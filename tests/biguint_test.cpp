// Unit and property tests for the arbitrary-precision integer substrate.
#include "bignum/biguint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "crypto/rng.hpp"

namespace dla::bn {
namespace {

using crypto::ChaCha20Rng;

TEST(BigUInt, DefaultIsZero) {
  BigUInt v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.bit_length(), 0u);
  EXPECT_EQ(v.to_hex(), "0");
  EXPECT_EQ(v.to_decimal(), "0");
}

TEST(BigUInt, FromU64RoundTrips) {
  BigUInt v(0xdeadbeefcafebabeull);
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe");
  EXPECT_EQ(v.low_u64(), 0xdeadbeefcafebabeull);
  EXPECT_TRUE(v.fits_u64());
}

TEST(BigUInt, HexRoundTrip) {
  const std::string hex = "1fffffffffffffffffffffffffffffffffffffffff";
  EXPECT_EQ(BigUInt::from_hex(hex).to_hex(), hex);
}

TEST(BigUInt, HexAccepts0xPrefixAndMixedCase) {
  EXPECT_EQ(BigUInt::from_hex("0xABCdef").to_hex(), "abcdef");
}

TEST(BigUInt, HexRejectsBadInput) {
  EXPECT_THROW(BigUInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigUInt, DecimalRoundTrip) {
  const std::string dec = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigUInt::from_decimal(dec).to_decimal(), dec);
}

TEST(BigUInt, DecimalRejectsBadInput) {
  EXPECT_THROW(BigUInt::from_decimal(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::from_decimal("12a3"), std::invalid_argument);
}

TEST(BigUInt, BytesRoundTrip) {
  BigUInt v = BigUInt::from_hex("0102030405060708090a0b0c0d0e0f10");
  auto bytes = v.to_bytes();
  EXPECT_EQ(bytes.size(), 16u);
  EXPECT_EQ(bytes.front(), 0x01);
  EXPECT_EQ(bytes.back(), 0x10);
  EXPECT_EQ(BigUInt::from_bytes(bytes), v);
}

TEST(BigUInt, BytesOfZeroIsEmpty) {
  EXPECT_TRUE(BigUInt{}.to_bytes().empty());
  EXPECT_TRUE(BigUInt::from_bytes({}).is_zero());
}

TEST(BigUInt, Ordering) {
  BigUInt a = BigUInt::from_hex("ffffffffffffffff");           // 64 bits
  BigUInt b = BigUInt::from_hex("10000000000000000");          // 65 bits
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
  EXPECT_LE(a, a);
  EXPECT_LT(BigUInt{}, a);
}

TEST(BigUInt, AdditionCarriesAcrossLimbs) {
  BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  BigUInt sum = a + BigUInt(1);
  EXPECT_EQ(sum.to_hex(), "100000000000000000000000000000000");
}

TEST(BigUInt, SubtractionBorrowsAcrossLimbs) {
  BigUInt a = BigUInt::from_hex("100000000000000000000000000000000");
  EXPECT_EQ((a - BigUInt(1)).to_hex(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt(1) - BigUInt(2), std::underflow_error);
}

TEST(BigUInt, MultiplicationKnownValue) {
  // 2^128 - 1 squared.
  BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a * a).to_hex(),
            "fffffffffffffffffffffffffffffffe00000000000000000000000000000001");
}

TEST(BigUInt, MultiplyByZero) {
  BigUInt a = BigUInt::from_hex("123456789abcdef0");
  EXPECT_TRUE((a * BigUInt{}).is_zero());
  EXPECT_TRUE((BigUInt{} * a).is_zero());
}

TEST(BigUInt, ShiftLeftRightInverse) {
  BigUInt v = BigUInt::from_hex("123456789abcdef0123456789abcdef");
  for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 130u}) {
    EXPECT_EQ(((v << s) >> s), v) << "shift " << s;
  }
}

TEST(BigUInt, ShiftRightDropsBits) {
  BigUInt v(0b1011);
  EXPECT_EQ((v >> 2).low_u64(), 0b10u);
  EXPECT_TRUE((v >> 10).is_zero());
}

TEST(BigUInt, DivModSingleLimb) {
  BigUInt v = BigUInt::from_decimal("123456789012345678901234567890");
  auto [q, r] = BigUInt::divmod(v, BigUInt(97));
  EXPECT_EQ(q * BigUInt(97) + r, v);
  EXPECT_LT(r, BigUInt(97));
}

TEST(BigUInt, DivModByZeroThrows) {
  EXPECT_THROW(BigUInt::divmod(BigUInt(1), BigUInt{}), std::domain_error);
  EXPECT_THROW(BigUInt(1) / BigUInt{}, std::domain_error);
  EXPECT_THROW(BigUInt(1) % BigUInt{}, std::domain_error);
}

TEST(BigUInt, DivModSmallerDividend) {
  auto [q, r] = BigUInt::divmod(BigUInt(5), BigUInt(7));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, BigUInt(5));
}

TEST(BigUInt, DivModEqualOperands) {
  BigUInt v = BigUInt::from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  auto [q, r] = BigUInt::divmod(v, v);
  EXPECT_EQ(q, BigUInt(1));
  EXPECT_TRUE(r.is_zero());
}

// Property: for random a, b: a == (a/b)*b + a%b and a%b < b.
TEST(BigUInt, DivModInvariantRandomised) {
  ChaCha20Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    BigUInt a = BigUInt::random_bits(rng, 1 + rng.next_below(512));
    BigUInt b = BigUInt::random_bits(rng, 1 + rng.next_below(256));
    auto [q, r] = BigUInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

// The Knuth-D "add back" branch fires with probability ~2/2^64 on random
// inputs; construct a case that forces the first qhat estimate too high.
TEST(BigUInt, DivModHardCases) {
  // Dividend chosen so top limbs are all ones against a divisor just above
  // a power of two — classic qhat-overestimate shape.
  BigUInt a = BigUInt::from_hex(
      "ffffffffffffffffffffffffffffffff00000000000000000000000000000000");
  BigUInt b = BigUInt::from_hex("ffffffffffffffff0000000000000001");
  auto [q, r] = BigUInt::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);

  BigUInt c = BigUInt::from_hex("80000000000000000000000000000000"
                                "00000000000000000000000000000000");
  BigUInt d = BigUInt::from_hex("80000000000000000000000000000001");
  auto [q2, r2] = BigUInt::divmod(c, d);
  EXPECT_EQ(q2 * d + r2, c);
  EXPECT_LT(r2, d);
}

TEST(BigUInt, ModExpSmallKnownValues) {
  // 3^4 mod 5 = 1; 2^10 mod 1000 = 24.
  EXPECT_EQ(BigUInt::modexp(BigUInt(3), BigUInt(4), BigUInt(5)), BigUInt(1));
  EXPECT_EQ(BigUInt::modexp(BigUInt(2), BigUInt(10), BigUInt(1000)),
            BigUInt(24));
}

TEST(BigUInt, ModExpEdgeCases) {
  EXPECT_TRUE(BigUInt::modexp(BigUInt(5), BigUInt(3), BigUInt(1)).is_zero());
  EXPECT_EQ(BigUInt::modexp(BigUInt(5), BigUInt{}, BigUInt(7)), BigUInt(1));
  EXPECT_TRUE(BigUInt::modexp(BigUInt{}, BigUInt(5), BigUInt(7)).is_zero());
  EXPECT_THROW(BigUInt::modexp(BigUInt(2), BigUInt(2), BigUInt{}),
               std::domain_error);
}

// Property: Fermat's little theorem a^(p-1) = 1 mod p for prime p, a != 0.
TEST(BigUInt, ModExpFermat) {
  const BigUInt p = BigUInt::from_hex("dc202a2e41eb3f8b");  // 64-bit safe prime
  ChaCha20Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    BigUInt a = BigUInt::random_below(rng, p - BigUInt(1)) + BigUInt(1);
    EXPECT_EQ(BigUInt::modexp(a, p - BigUInt(1), p), BigUInt(1));
  }
}

TEST(BigUInt, GcdKnownValues) {
  EXPECT_EQ(BigUInt::gcd(BigUInt(48), BigUInt(18)), BigUInt(6));
  EXPECT_EQ(BigUInt::gcd(BigUInt(17), BigUInt(5)), BigUInt(1));
  EXPECT_EQ(BigUInt::gcd(BigUInt{}, BigUInt(7)), BigUInt(7));
  EXPECT_EQ(BigUInt::gcd(BigUInt(7), BigUInt{}), BigUInt(7));
}

TEST(BigUInt, ModInvRoundTrip) {
  ChaCha20Rng rng(5);
  const BigUInt p = BigUInt::from_hex(
      "b253d0f212cac9fb474dbafa53e183bf");  // 128-bit prime
  for (int i = 0; i < 50; ++i) {
    BigUInt a = BigUInt::random_below(rng, p - BigUInt(1)) + BigUInt(1);
    auto inv = BigUInt::modinv(a, p);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(BigUInt::mulmod(a, *inv, p), BigUInt(1));
  }
}

TEST(BigUInt, ModInvNonCoprimeFails) {
  EXPECT_FALSE(BigUInt::modinv(BigUInt(6), BigUInt(9)).has_value());
  EXPECT_FALSE(BigUInt::modinv(BigUInt{}, BigUInt(9)).has_value());
}

TEST(BigUInt, RandomBitsHasExactWidth) {
  ChaCha20Rng rng(77);
  for (std::size_t bits : {1u, 2u, 63u, 64u, 65u, 127u, 256u, 1000u}) {
    BigUInt v = BigUInt::random_bits(rng, bits);
    EXPECT_EQ(v.bit_length(), bits);
  }
}

TEST(BigUInt, RandomBelowStaysBelow) {
  ChaCha20Rng rng(88);
  BigUInt bound = BigUInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigUInt::random_below(rng, bound), bound);
  }
  EXPECT_THROW(BigUInt::random_below(rng, BigUInt{}), std::domain_error);
}

TEST(BigUInt, BitAccess) {
  BigUInt v = BigUInt::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(64));
  EXPECT_FALSE(v.bit(10000));
}

TEST(BigUInt, MulModMatchesManual) {
  BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffff");
  BigUInt b = BigUInt::from_hex("eeeeeeeeeeeeeeeeeeeeeeee");
  BigUInt m = BigUInt::from_hex("fffffffffffffffffffffff1");
  EXPECT_EQ(BigUInt::mulmod(a, b, m), (a * b) % m);
}

TEST(BigUInt, StreamOutputIsDecimal) {
  std::ostringstream os;
  os << BigUInt::from_decimal("340282366920938463463374607431768211455");
  EXPECT_EQ(os.str(), "340282366920938463463374607431768211455");
  std::ostringstream zero;
  zero << BigUInt{};
  EXPECT_EQ(zero.str(), "0");
}

// Property: algebraic identities on random operands.
class BigUIntAlgebraTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigUIntAlgebraTest, RingAxiomsHold) {
  ChaCha20Rng rng(GetParam());
  BigUInt a = BigUInt::random_bits(rng, 200);
  BigUInt b = BigUInt::random_bits(rng, 180);
  BigUInt c = BigUInt::random_bits(rng, 160);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a + b) - b, a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigUIntAlgebraTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace dla::bn
