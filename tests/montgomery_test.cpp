// Tests for Montgomery-form arithmetic against the generic BigUInt path.
#include "bignum/montgomery.hpp"

#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "crypto/rng.hpp"

namespace dla::bn {
namespace {

using crypto::ChaCha20Rng;

BigUInt prime256() {
  return BigUInt::from_hex(
      "dc9db496edbc0c1c97972e233e1a191fdb56a14df65a307ca1cea9ebe0fb9b93");
}

TEST(Montgomery, RejectsBadModulus) {
  EXPECT_THROW(MontgomeryContext(BigUInt(10)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigUInt(1)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigUInt{}), std::invalid_argument);
}

TEST(Montgomery, MulModSmallKnownValues) {
  MontgomeryContext ctx(BigUInt(97));
  EXPECT_EQ(ctx.mulmod(BigUInt(12), BigUInt(34)), BigUInt((12 * 34) % 97));
  EXPECT_EQ(ctx.mulmod(BigUInt{}, BigUInt(34)), BigUInt{});
  EXPECT_EQ(ctx.mulmod(BigUInt(96), BigUInt(96)), BigUInt((96 * 96) % 97));
}

TEST(Montgomery, MulModMatchesGenericRandomised) {
  MontgomeryContext ctx(prime256());
  ChaCha20Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    BigUInt a = BigUInt::random_below(rng, prime256());
    BigUInt b = BigUInt::random_below(rng, prime256());
    EXPECT_EQ(ctx.mulmod(a, b), BigUInt::mulmod(a, b, prime256()));
  }
}

TEST(Montgomery, PowMatchesGenericRandomised) {
  MontgomeryContext ctx(prime256());
  ChaCha20Rng rng(2);
  for (int i = 0; i < 25; ++i) {
    BigUInt base = BigUInt::random_below(rng, prime256());
    BigUInt exp = BigUInt::random_bits(rng, 1 + rng.next_below(256));
    EXPECT_EQ(ctx.pow(base, exp), BigUInt::modexp(base, exp, prime256()));
  }
}

TEST(Montgomery, PowEdgeCases) {
  MontgomeryContext ctx(prime256());
  EXPECT_EQ(ctx.pow(BigUInt(5), BigUInt{}), BigUInt(1));
  EXPECT_EQ(ctx.pow(BigUInt{}, BigUInt(5)), BigUInt{});
  EXPECT_EQ(ctx.pow(BigUInt(5), BigUInt(1)), BigUInt(5));
  // Base larger than the modulus is reduced first.
  BigUInt big_base = prime256() + BigUInt(7);
  EXPECT_EQ(ctx.pow(big_base, BigUInt(3)),
            BigUInt::modexp(BigUInt(7), BigUInt(3), prime256()));
}

TEST(Montgomery, FermatHolds) {
  MontgomeryContext ctx(prime256());
  ChaCha20Rng rng(3);
  BigUInt p_minus_1 = prime256() - BigUInt(1);
  for (int i = 0; i < 10; ++i) {
    BigUInt a =
        BigUInt::random_below(rng, p_minus_1 - BigUInt(1)) + BigUInt(1);
    EXPECT_EQ(ctx.pow(a, p_minus_1), BigUInt(1));
  }
}

TEST(Montgomery, WorksAcrossModulusWidths) {
  ChaCha20Rng rng(4);
  for (std::size_t bits : {17u, 64u, 65u, 128u, 192u, 384u, 512u}) {
    BigUInt m = generate_prime(rng, bits, 12);
    MontgomeryContext ctx(m);
    for (int i = 0; i < 8; ++i) {
      BigUInt a = BigUInt::random_below(rng, m);
      BigUInt e = BigUInt::random_bits(rng, 1 + rng.next_below(bits));
      ASSERT_EQ(ctx.pow(a, e), BigUInt::modexp(a, e, m))
          << bits << "-bit modulus";
    }
  }
}

TEST(Montgomery, RsaStyleCompositeModulus) {
  // Works for any odd modulus, not only primes (accumulator / RSA use).
  BigUInt n = BigUInt::from_hex(
      "c7bea52f7ecdea46eaa073a2196b308db3041eb80decb72ed82bcae1108e1d37");
  MontgomeryContext ctx(n);
  ChaCha20Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    BigUInt a = BigUInt::random_below(rng, n);
    BigUInt e = BigUInt::random_bits(rng, 128);
    EXPECT_EQ(ctx.pow(a, e), BigUInt::modexp(a, e, n));
  }
}

}  // namespace
}  // namespace dla::bn
