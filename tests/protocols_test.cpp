// Distributed-protocol tests: the relaxed secure computing primitives of
// Section 3 running as actor state machines over the simulated network.
#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "crypto/modexp_engine.hpp"
#include "crypto/pohlig_hellman.hpp"
#include "logm/workload.hpp"
#include "net/bytes.hpp"

namespace dla::audit {
namespace {

// A small cluster over the paper's schema/partition for protocol tests.
struct ProtocolFixture : ::testing::Test {
  ProtocolFixture()
      : cluster(Cluster::Options{logm::paper_schema(), 4, 1,
                                 logm::paper_partition(), /*seed=*/42,
                                 /*auditor_users=*/true}) {}

  std::vector<bn::BigUInt> encode_set(const std::vector<std::string>& items) {
    std::vector<bn::BigUInt> out;
    for (const auto& s : items) {
      out.push_back(crypto::encode_element(cluster.config()->ph_domain, s));
    }
    return out;
  }

  Cluster cluster;
};

TEST_F(ProtocolFixture, ClusterConfigHelpers) {
  const auto& cfg = *cluster.config();
  EXPECT_EQ(cfg.cluster_size(), 4u);
  EXPECT_EQ(cfg.majority(), 3u);
  EXPECT_EQ(cfg.index_of(cfg.dla_nodes[2]), 2u);
  EXPECT_THROW(cfg.index_of(cfg.ttp), std::out_of_range);
  EXPECT_EQ(cfg.next_in_ring(3), cfg.dla_nodes[0]);  // wraps
}

TEST_F(ProtocolFixture, TtpCountsSessionsServed) {
  EXPECT_EQ(cluster.ttp().sessions_served(), 0u);
  const SessionId session = 77;
  cluster.dla(0).stage_cmp_input(session, bn::BigUInt(1));
  cluster.dla(1).stage_cmp_input(session, bn::BigUInt(1));
  CmpSpec spec;
  spec.session = session;
  spec.op = CmpOpKind::Equality;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1]};
  spec.ttp = cluster.config()->ttp;
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_cmp(cluster.sim(), spec);
  cluster.run();
  EXPECT_EQ(cluster.ttp().sessions_served(), 1u);
}

// ------------------------------------------------- secure set protocols --

TEST_F(ProtocolFixture, SetIntersectionFigure4Example) {
  // The exact example of Figure 4: S1={c,d,e}, S2={d,e,f}, S3={e,f,g} on
  // three nodes; the intersection is {e}.
  const SessionId session = 1;
  cluster.dla(0).stage_set_input(session, encode_set({"c", "d", "e"}));
  cluster.dla(1).stage_set_input(session, encode_set({"d", "e", "f"}));
  cluster.dla(2).stage_set_input(session, encode_set({"e", "f", "g"}));

  std::optional<std::vector<bn::BigUInt>> result;
  cluster.dla(0).on_set_result = [&](SessionId s,
                                     std::vector<bn::BigUInt> elements) {
    ASSERT_EQ(s, session);
    result = std::move(elements);
  };
  SetSpec spec;
  spec.session = session;
  spec.op = SetOp::Intersect;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1],
                       cluster.config()->dla_nodes[2]};
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();

  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0],
            crypto::encode_element(cluster.config()->ph_domain, "e"));
}

TEST_F(ProtocolFixture, SetIntersectionEmpty) {
  const SessionId session = 2;
  cluster.dla(0).stage_set_input(session, encode_set({"a"}));
  cluster.dla(1).stage_set_input(session, encode_set({"b"}));
  std::optional<std::vector<bn::BigUInt>> result;
  cluster.dla(1).on_set_result = [&](SessionId, std::vector<bn::BigUInt> e) {
    result = std::move(e);
  };
  SetSpec spec;
  spec.session = session;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1]};
  spec.collector = cluster.config()->dla_nodes[1];
  spec.observers = {cluster.config()->dla_nodes[1]};
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST_F(ProtocolFixture, SetUnionDeduplicates) {
  const SessionId session = 3;
  cluster.dla(0).stage_set_input(session, encode_set({"a", "b"}));
  cluster.dla(1).stage_set_input(session, encode_set({"b", "c"}));
  cluster.dla(2).stage_set_input(session, encode_set({"c", "d"}));
  std::optional<std::vector<bn::BigUInt>> result;
  cluster.dla(2).on_set_result = [&](SessionId, std::vector<bn::BigUInt> e) {
    result = std::move(e);
  };
  SetSpec spec;
  spec.session = session;
  spec.op = SetOp::Union;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1],
                       cluster.config()->dla_nodes[2]};
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[2]};
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 4u);  // {a, b, c, d}
  std::vector<bn::BigUInt> expected = encode_set({"a", "b", "c", "d"});
  std::sort(expected.begin(), expected.end());
  std::sort(result->begin(), result->end());
  EXPECT_EQ(*result, expected);
}

TEST_F(ProtocolFixture, SetIntersectionAllFourNodes) {
  const SessionId session = 4;
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_set_input(
        session, encode_set({"common", "own-" + std::to_string(i)}));
  }
  std::optional<std::vector<bn::BigUInt>> result;
  cluster.dla(3).on_set_result = [&](SessionId, std::vector<bn::BigUInt> e) {
    result = std::move(e);
  };
  SetSpec spec;
  spec.session = session;
  spec.participants = cluster.config()->dla_nodes;
  spec.collector = cluster.config()->dla_nodes[2];
  spec.observers = {cluster.config()->dla_nodes[3]};
  cluster.dla(1).start_set_protocol(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0],
            crypto::encode_element(cluster.config()->ph_domain, "common"));
}

TEST_F(ProtocolFixture, SetRingResultIdenticalWithBatchingOnAndOff) {
  // Differential: the same protocol run (same seed, same inputs) must
  // produce bit-identical results whether batch fan-out is enabled or not.
  auto run_once = [](bool batching) {
    crypto::ModExpEngine::set_batching_enabled(batching);
    crypto::ModExpEngine::set_batch_threads(batching ? 4 : 0);
    Cluster c(Cluster::Options{logm::paper_schema(), 4, 1,
                               logm::paper_partition(), /*seed=*/42,
                               /*auditor_users=*/true});
    auto encode = [&](const std::vector<std::string>& items) {
      std::vector<bn::BigUInt> out;
      for (const auto& s : items) {
        out.push_back(crypto::encode_element(c.config()->ph_domain, s));
      }
      return out;
    };
    const SessionId session = 9;
    c.dla(0).stage_set_input(session, encode({"c", "d", "e", "k"}));
    c.dla(1).stage_set_input(session, encode({"d", "e", "f", "k"}));
    c.dla(2).stage_set_input(session, encode({"e", "f", "g", "k"}));
    std::vector<bn::BigUInt> result;
    c.dla(0).on_set_result = [&](SessionId, std::vector<bn::BigUInt> e) {
      result = std::move(e);
    };
    SetSpec spec;
    spec.session = session;
    spec.op = SetOp::Intersect;
    spec.participants = {c.config()->dla_nodes[0], c.config()->dla_nodes[1],
                         c.config()->dla_nodes[2]};
    spec.collector = c.config()->dla_nodes[0];
    spec.observers = {c.config()->dla_nodes[0]};
    c.dla(0).start_set_protocol(c.sim(), spec);
    c.run();
    std::sort(result.begin(), result.end());
    return result;
  };
  std::vector<bn::BigUInt> batched = run_once(true);
  std::vector<bn::BigUInt> serial = run_once(false);
  crypto::ModExpEngine::set_batching_enabled(true);
  crypto::ModExpEngine::set_batch_threads(0);
  ASSERT_EQ(batched.size(), 2u);  // {e, k}
  EXPECT_EQ(batched, serial);
}

TEST_F(ProtocolFixture, RingMessageToNonParticipantIsDropped) {
  // dla(3) is NOT in participants but receives a kSetRing naming it as the
  // recipient: it must drop the message (counted in set_ring_rejects())
  // instead of joining the ring at a fabricated position.
  const SessionId session = 8;
  SetSpec spec;
  spec.session = session;
  spec.op = SetOp::Intersect;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1]};
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[0]};

  bool got_result = false;
  cluster.dla(0).on_set_result = [&](SessionId, std::vector<bn::BigUInt>) {
    got_result = true;
  };
  net::Writer w;
  spec.encode(w);
  SetChunkHeader{0, kRingEncrypt, 0, 1}.encode(w);
  w.u32(1);  // hops
  encode_elements(w, {crypto::encode_element(cluster.config()->ph_domain, "x")});
  EXPECT_EQ(cluster.dla(3).set_ring_rejects(), 0u);
  cluster.sim().send(cluster.config()->dla_nodes[0],
                     cluster.config()->dla_nodes[3], kSetRing,
                     std::move(w).take());
  cluster.run();
  EXPECT_EQ(cluster.dla(3).set_ring_rejects(), 1u);
  EXPECT_FALSE(got_result);  // ring died at the invalid hop; nothing forwarded

  // Same guard on kSetStart: a start sent to a non-participant is rejected.
  net::Writer w2;
  spec.encode(w2);
  cluster.sim().send(cluster.config()->dla_nodes[0],
                     cluster.config()->dla_nodes[3], kSetStart,
                     std::move(w2).take());
  cluster.run();
  EXPECT_EQ(cluster.dla(3).set_ring_rejects(), 2u);
}

TEST_F(ProtocolFixture, MissingStagedInputActsAsEmptySet) {
  const SessionId session = 5;
  cluster.dla(0).stage_set_input(session, encode_set({"x"}));
  // dla(1) stages nothing.
  std::optional<std::vector<bn::BigUInt>> result;
  cluster.dla(0).on_set_result = [&](SessionId, std::vector<bn::BigUInt> e) {
    result = std::move(e);
  };
  SetSpec spec;
  spec.session = session;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1]};
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

// --------------------------------------------------------- secure sum --

TEST_F(ProtocolFixture, SecureSumBasic) {
  const SessionId session = 10;
  std::uint64_t values[] = {100, 250, 3, 9999};
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_sum_input(session, bn::BigUInt(values[i]));
  }
  std::optional<bn::BigUInt> result;
  cluster.dla(0).on_sum_result = [&](SessionId, bn::BigUInt v) {
    result = std::move(v);
  };
  SumSpec spec;
  spec.session = session;
  spec.participants = cluster.config()->dla_nodes;
  spec.threshold_k = 3;
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_sum(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, bn::BigUInt(100 + 250 + 3 + 9999));
}

TEST_F(ProtocolFixture, SecureSumWeighted) {
  const SessionId session = 11;
  std::uint64_t values[] = {10, 20, 30, 40};
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_sum_input(session, bn::BigUInt(values[i]));
  }
  std::optional<bn::BigUInt> result;
  cluster.dla(2).on_sum_result = [&](SessionId, bn::BigUInt v) {
    result = std::move(v);
  };
  SumSpec spec;
  spec.session = session;
  spec.participants = cluster.config()->dla_nodes;
  spec.threshold_k = 2;
  spec.collector = cluster.config()->dla_nodes[1];
  spec.observers = {cluster.config()->dla_nodes[2]};
  spec.weights = {bn::BigUInt(1), bn::BigUInt(2), bn::BigUInt(3),
                  bn::BigUInt(4)};
  cluster.dla(3).start_sum(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, bn::BigUInt(1 * 10 + 2 * 20 + 3 * 30 + 4 * 40));
}

TEST_F(ProtocolFixture, SecureSumMissingInputIsZero) {
  const SessionId session = 12;
  cluster.dla(0).stage_sum_input(session, bn::BigUInt(5));
  // Others stage nothing -> contribute 0.
  std::optional<bn::BigUInt> result;
  cluster.dla(0).on_sum_result = [&](SessionId, bn::BigUInt v) {
    result = std::move(v);
  };
  SumSpec spec;
  spec.session = session;
  spec.participants = cluster.config()->dla_nodes;
  spec.threshold_k = 4;
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_sum(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, bn::BigUInt(5));
}

TEST_F(ProtocolFixture, SecureSumRejectsBadSpecs) {
  SumSpec spec;
  spec.session = 13;
  spec.participants = cluster.config()->dla_nodes;
  spec.threshold_k = 0;
  spec.collector = cluster.config()->dla_nodes[0];
  EXPECT_THROW(cluster.dla(0).start_sum(cluster.sim(), spec),
               std::invalid_argument);
  spec.threshold_k = 5;
  EXPECT_THROW(cluster.dla(0).start_sum(cluster.sim(), spec),
               std::invalid_argument);
  spec.threshold_k = 2;
  spec.weights = {bn::BigUInt(1)};
  EXPECT_THROW(cluster.dla(0).start_sum(cluster.sim(), spec),
               std::invalid_argument);
}

// --------------------------------------------- blind-TTP comparisons --

TEST_F(ProtocolFixture, SecureEqualityEqual) {
  const SessionId session = 20;
  cluster.dla(0).stage_cmp_input(session, bn::BigUInt(777));
  cluster.dla(1).stage_cmp_input(session, bn::BigUInt(777));
  std::optional<std::uint32_t> outcome;
  cluster.dla(0).on_cmp_result = [&](SessionId, CmpOpKind op,
                                     std::uint32_t result) {
    EXPECT_EQ(op, CmpOpKind::Equality);
    outcome = result;
  };
  CmpSpec spec;
  spec.session = session;
  spec.op = CmpOpKind::Equality;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1]};
  spec.ttp = cluster.config()->ttp;
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_cmp(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, 1u);
}

TEST_F(ProtocolFixture, SecureEqualityUnequal) {
  const SessionId session = 21;
  cluster.dla(0).stage_cmp_input(session, bn::BigUInt(777));
  cluster.dla(1).stage_cmp_input(session, bn::BigUInt(778));
  std::optional<std::uint32_t> outcome;
  cluster.dla(1).on_cmp_result = [&](SessionId, CmpOpKind,
                                     std::uint32_t result) {
    outcome = result;
  };
  CmpSpec spec;
  spec.session = session;
  spec.op = CmpOpKind::Equality;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1]};
  spec.ttp = cluster.config()->ttp;
  spec.observers = {cluster.config()->dla_nodes[1]};
  cluster.dla(1).start_cmp(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, 0u);
}

TEST_F(ProtocolFixture, SecureMaxAndMin) {
  std::uint64_t values[] = {40, 170, 3, 99};
  for (SessionId session : {SessionId{22}, SessionId{23}}) {
    for (std::size_t i = 0; i < 4; ++i) {
      cluster.dla(i).stage_cmp_input(session, bn::BigUInt(values[i]));
    }
  }
  std::optional<std::uint32_t> max_winner, min_winner;
  cluster.dla(0).on_cmp_result = [&](SessionId s, CmpOpKind op,
                                     std::uint32_t result) {
    if (op == CmpOpKind::Max) max_winner = result;
    if (op == CmpOpKind::Min) min_winner = result;
    (void)s;
  };
  CmpSpec spec;
  spec.op = CmpOpKind::Max;
  spec.session = 22;
  spec.participants = cluster.config()->dla_nodes;
  spec.ttp = cluster.config()->ttp;
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_cmp(cluster.sim(), spec);
  spec.op = CmpOpKind::Min;
  spec.session = 23;
  cluster.dla(0).start_cmp(cluster.sim(), spec);
  cluster.run();
  ASSERT_TRUE(max_winner.has_value());
  ASSERT_TRUE(min_winner.has_value());
  EXPECT_EQ(*max_winner, 1u);  // 170
  EXPECT_EQ(*min_winner, 2u);  // 3
}

TEST_F(ProtocolFixture, SecureRankIsPrivatePerParticipant) {
  const SessionId session = 24;
  std::uint64_t values[] = {40, 170, 3, 99};
  std::map<std::size_t, std::uint32_t> ranks;
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_cmp_input(session, bn::BigUInt(values[i]));
    cluster.dla(i).on_rank = [&, i](SessionId, std::uint32_t rank) {
      ranks[i] = rank;
    };
  }
  CmpSpec spec;
  spec.session = session;
  spec.op = CmpOpKind::Rank;
  spec.participants = cluster.config()->dla_nodes;
  spec.ttp = cluster.config()->ttp;
  spec.observers = {};
  cluster.dla(0).start_cmp(cluster.sim(), spec);
  cluster.run();
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_EQ(ranks[2], 0u);  // 3 is smallest
  EXPECT_EQ(ranks[0], 1u);  // 40
  EXPECT_EQ(ranks[3], 2u);  // 99
  EXPECT_EQ(ranks[1], 3u);  // 170 is largest
}

// ------------------------------------------------- integrity checking --

struct IntegrityFixture : ProtocolFixture {
  // Log the paper's Table 1 records through a user node so fragments and
  // accumulator deposits are in place.
  void log_paper_records() {
    for (const auto& rec : logm::paper_table1_records()) {
      cluster.user(0).log_record(
          cluster.sim(), rec.attrs,
          [&](std::optional<logm::Glsn> glsn) { glsns.push_back(*glsn); });
    }
    cluster.run();
    ASSERT_EQ(glsns.size(), 5u);
  }
  std::vector<logm::Glsn> glsns;
};

TEST_F(IntegrityFixture, IntactRecordPasses) {
  log_paper_records();
  std::optional<bool> ok;
  cluster.dla(0).on_integrity_result = [&](SessionId, logm::Glsn, bool result) {
    ok = result;
  };
  cluster.dla(0).start_integrity_check(cluster.sim(), 100, glsns[0]);
  cluster.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
}

TEST_F(IntegrityFixture, TamperedFragmentDetected) {
  log_paper_records();
  // A compromised DLA node rewrites a stored attribute (Section 4.1 threat).
  logm::Fragment tampered = *cluster.dla(1).store().get(glsns[1]);
  tampered.attrs["C2"] = logm::Value(999999.0);
  cluster.dla(1).store().put(tampered);

  std::optional<bool> ok;
  cluster.dla(2).on_integrity_result = [&](SessionId, logm::Glsn, bool result) {
    ok = result;
  };
  cluster.dla(2).start_integrity_check(cluster.sim(), 101, glsns[1]);
  cluster.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST_F(IntegrityFixture, DeletedFragmentDetected) {
  log_paper_records();
  cluster.dla(3).store().erase(glsns[2]);
  std::optional<bool> ok;
  cluster.dla(0).on_integrity_result = [&](SessionId, logm::Glsn, bool result) {
    ok = result;
  };
  cluster.dla(0).start_integrity_check(cluster.sim(), 102, glsns[2]);
  cluster.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST_F(IntegrityFixture, UnknownGlsnFails) {
  log_paper_records();
  std::optional<bool> ok;
  cluster.dla(0).on_integrity_result = [&](SessionId, logm::Glsn, bool result) {
    ok = result;
  };
  cluster.dla(0).start_integrity_check(cluster.sim(), 103, 0xdeadbeef);
  cluster.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST_F(IntegrityFixture, EveryNodeCanInitiate) {
  log_paper_records();
  for (std::size_t i = 0; i < 4; ++i) {
    std::optional<bool> ok;
    cluster.dla(i).on_integrity_result =
        [&](SessionId, logm::Glsn, bool result) { ok = result; };
    cluster.dla(i).start_integrity_check(cluster.sim(), 200 + i, glsns[4]);
    cluster.run();
    ASSERT_TRUE(ok.has_value()) << "initiator " << i;
    EXPECT_TRUE(*ok) << "initiator " << i;
  }
}

TEST_F(IntegrityFixture, AclConsistencyHoldsAfterLogging) {
  log_paper_records();
  std::optional<bool> consistent;
  cluster.dla(0).on_acl_check = [&](SessionId, bool result) {
    consistent = result;
  };
  cluster.dla(0).start_acl_consistency_check(cluster.sim(), 300);
  cluster.run();
  ASSERT_TRUE(consistent.has_value());
  EXPECT_TRUE(*consistent);
}

TEST_F(IntegrityFixture, AclInconsistencyDetected) {
  log_paper_records();
  // A compromised node silently authorizes an extra glsn for a ticket.
  cluster.dla(2).acl().authorize("T1", 0x666);
  std::optional<bool> consistent;
  cluster.dla(0).on_acl_check = [&](SessionId, bool result) {
    consistent = result;
  };
  cluster.dla(0).start_acl_consistency_check(cluster.sim(), 301);
  cluster.run();
  ASSERT_TRUE(consistent.has_value());
  EXPECT_FALSE(*consistent);
}

}  // namespace
}  // namespace dla::audit
