// Tests for fragment replication + heartbeat failure detection: queries and
// aggregates survive a crashed primary by routing to the successor replica.
#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

namespace dla::audit {
namespace {

constexpr net::SimTime kBeat = 10000;  // 10 ms heartbeat

struct ReplicationFixture : ::testing::Test {
  ReplicationFixture()
      : cluster(Cluster::Options{logm::paper_schema(), 4, 1,
                                 logm::paper_partition(), /*seed=*/51,
                                 /*auditor_users=*/true,
                                 /*certify_reports=*/false,
                                 /*replication=*/2,
                                 /*heartbeat_interval=*/kBeat}) {
    for (const auto& rec : logm::paper_table1_records()) {
      cluster.user(0).log_record(cluster.sim(), rec.attrs,
                                 [&](std::optional<logm::Glsn> g) {
                                   ASSERT_TRUE(g.has_value());
                                   glsns.push_back(*g);
                                 });
      drain();
    }
  }

  // Run the simulation forward without letting heartbeats spin forever.
  void drain(net::SimTime window = 2000000) {
    cluster.sim().run(cluster.sim().now() + window);
  }

  void let_suspicion_develop() { drain(5 * kBeat); }

  QueryOutcome run_query(const std::string& criterion, std::size_t gateway) {
    cluster.user(0).set_gateway(gateway);
    std::optional<QueryOutcome> outcome;
    cluster.user(0).query(cluster.sim(), criterion,
                          [&](QueryOutcome o) { outcome = std::move(o); });
    drain(10000000);  // past the 5 s query watchdog
    EXPECT_TRUE(outcome.has_value()) << criterion;
    return outcome.value_or(QueryOutcome{});
  }

  Cluster cluster;
  std::vector<logm::Glsn> glsns;
};

TEST_F(ReplicationFixture, ReplicasHoldPredecessorFragments) {
  // P2 replicates P1's fragments (id, C2) for every logged glsn.
  for (logm::Glsn g : glsns) {
    const logm::Fragment* replica = cluster.dla(2).replica_store().get(g);
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(replica->attrs.contains("id"));
    EXPECT_TRUE(replica->attrs.contains("C2"));
    // Primary copies stay in the primary store.
    EXPECT_NE(cluster.dla(1).store().get(g), nullptr);
  }
}

TEST_F(ReplicationFixture, QueriesSurvivePrimaryCrash) {
  // Crash P1 (owner of id/C2); after suspicion develops, a gateway routes
  // the id-subquery to P2's replica and the answer is unchanged.
  QueryOutcome before = run_query("id = 'U1' AND protocl = 'UDP'", 0);
  ASSERT_TRUE(before.ok) << before.error;
  ASSERT_EQ(before.glsns.size(), 2u);

  cluster.sim().crash(cluster.config()->dla_nodes[1]);
  let_suspicion_develop();
  QueryOutcome after = run_query("id = 'U1' AND protocl = 'UDP'", 0);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.glsns, before.glsns);
}

TEST_F(ReplicationFixture, AggregatesSurvivePrimaryCrash) {
  cluster.sim().crash(cluster.config()->dla_nodes[1]);
  let_suspicion_develop();
  cluster.user(0).set_gateway(3);
  std::optional<AggregateOutcome> outcome;
  cluster.user(0).aggregate_query(
      cluster.sim(), "protocl = 'UDP'", AggOp::Sum, "C2",
      [&](AggregateOutcome o) { outcome = std::move(o); });
  drain(10000000);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok) << outcome->error;
  EXPECT_NEAR(outcome->value, 603.56, 1e-9);  // served from P2's replica
}

TEST_F(ReplicationFixture, JoinSurvivesPrimaryCrash) {
  cluster.sim().crash(cluster.config()->dla_nodes[1]);
  let_suspicion_develop();
  // C1 (P3) < C2 (P1, crashed -> replica at P2): all five rows satisfy it.
  QueryOutcome outcome = run_query("C1 < C2", 0);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns.size(), 5u);
}

TEST_F(ReplicationFixture, SuspicionClearsAfterRecovery) {
  cluster.sim().crash(cluster.config()->dla_nodes[1]);
  let_suspicion_develop();
  EXPECT_TRUE(cluster.dla(0).suspects(1, cluster.sim().now()));
  cluster.sim().recover(cluster.config()->dla_nodes[1]);
  // A rebooting node restarts its heartbeat loop (the old timer fired and
  // was swallowed while it was down).
  cluster.dla(1).start_heartbeats(cluster.sim());
  drain(5 * kBeat);
  EXPECT_FALSE(cluster.dla(0).suspects(1, cluster.sim().now()));
  // Back on the primary: queries still correct.
  QueryOutcome outcome = run_query("id = 'U2'", 0);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns.size(), 2u);
}

TEST_F(ReplicationFixture, DeleteRemovesReplicaCopiesToo) {
  Ticket del = cluster.issue_ticket(
      "TD", "u0", {logm::Op::Read, logm::Op::Write, logm::Op::Delete});
  cluster.user(0).configure(cluster.config(), del);
  std::optional<logm::Glsn> mine;
  cluster.user(0).log_record(cluster.sim(),
                             logm::paper_table1_records()[0].attrs,
                             [&](std::optional<logm::Glsn> g) { mine = g; });
  drain();
  ASSERT_TRUE(mine.has_value());
  ASSERT_NE(cluster.dla(2).replica_store().get(*mine), nullptr);
  std::optional<bool> deleted;
  cluster.user(0).delete_record(cluster.sim(), *mine,
                                [&](bool ok) { deleted = ok; });
  drain();
  ASSERT_TRUE(deleted.has_value());
  EXPECT_TRUE(*deleted);
  EXPECT_EQ(cluster.dla(1).store().get(*mine), nullptr);
  EXPECT_EQ(cluster.dla(2).replica_store().get(*mine), nullptr);
}

TEST_F(ReplicationFixture, ClearGatewayRestoresRoundRobin) {
  cluster.user(0).set_gateway(2);
  cluster.user(0).clear_gateway();
  // Round-robin again: the query still answers (routing sanity only).
  std::optional<QueryOutcome> outcome;
  cluster.user(0).query(cluster.sim(), "protocl = 'TCP'",
                        [&](QueryOutcome o) { outcome = std::move(o); });
  drain(10000000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok);
  EXPECT_EQ(outcome->glsns.size(), 2u);
}

TEST(ReplicationOff, CrashWithoutReplicationTimesOut) {
  Cluster cluster(Cluster::Options{logm::paper_schema(), 4, 1,
                                   logm::paper_partition(), /*seed=*/52,
                                   /*auditor_users=*/true,
                                   /*certify_reports=*/false,
                                   /*replication=*/1,
                                   /*heartbeat_interval=*/kBeat});
  for (const auto& rec : logm::paper_table1_records()) {
    cluster.user(0).log_record(cluster.sim(), rec.attrs,
                               [](std::optional<logm::Glsn>) {});
    cluster.sim().run(cluster.sim().now() + 2000000);
  }
  cluster.sim().crash(cluster.config()->dla_nodes[1]);
  cluster.sim().run(cluster.sim().now() + 5 * kBeat);
  cluster.user(0).set_gateway(0);
  std::optional<QueryOutcome> outcome;
  cluster.user(0).query(cluster.sim(), "id = 'U1' AND protocl = 'UDP'",
                        [&](QueryOutcome o) { outcome = std::move(o); });
  cluster.sim().run(cluster.sim().now() + 10000000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->error, "query timed out");
}

}  // namespace
}  // namespace dla::audit
