// Tests for the commutative cipher — the heart of the paper's secure set
// protocols (Section 3, Eqs. 6-7; Figure 4).
#include "crypto/pohlig_hellman.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bignum/prime.hpp"

namespace dla::crypto {
namespace {

TEST(PohligHellman, Fixed256DomainIsSafePrime) {
  ChaCha20Rng rng(1);
  PhDomain d = PhDomain::fixed256();
  EXPECT_EQ(d.p.bit_length(), 256u);
  EXPECT_TRUE(bn::is_probable_prime(d.p, rng));
}

TEST(PohligHellman, EncryptDecryptRoundTrip) {
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(2);
  PhKey key = PhKey::generate(domain, rng);
  for (int i = 0; i < 20; ++i) {
    bn::BigUInt m =
        bn::BigUInt::random_below(rng, domain.p - bn::BigUInt(1)) + bn::BigUInt(1);
    EXPECT_EQ(key.decrypt(key.encrypt(m)), m);
  }
}

TEST(PohligHellman, RejectsOutOfRangePlaintext) {
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(3);
  PhKey key = PhKey::generate(domain, rng);
  EXPECT_THROW(key.encrypt(bn::BigUInt{}), std::invalid_argument);
  EXPECT_THROW(key.encrypt(domain.p), std::invalid_argument);
  EXPECT_THROW(key.decrypt(domain.p + bn::BigUInt(1)), std::invalid_argument);
}

// Eq. (6) of the paper: encryption by any permutation of keys is identical.
TEST(PohligHellman, CommutativityTwoKeys) {
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(4);
  PhKey a = PhKey::generate(domain, rng);
  PhKey b = PhKey::generate(domain, rng);
  bn::BigUInt m = encode_element(domain, "transaction T1100265");
  EXPECT_EQ(a.encrypt(b.encrypt(m)), b.encrypt(a.encrypt(m)));
}

TEST(PohligHellman, CommutativityManyKeysAllPermutations) {
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(5);
  std::vector<PhKey> keys;
  for (int i = 0; i < 4; ++i) keys.push_back(PhKey::generate(domain, rng));
  bn::BigUInt m = encode_element(domain, "glsn 139aef78");

  std::vector<std::size_t> order = {0, 1, 2, 3};
  bn::BigUInt reference;
  bool first = true;
  do {
    bn::BigUInt c = m;
    for (std::size_t idx : order) c = keys[idx].encrypt(c);
    if (first) {
      reference = c;
      first = false;
    } else {
      EXPECT_EQ(c, reference);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(PohligHellman, DecryptionInAnyOrder) {
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(6);
  PhKey a = PhKey::generate(domain, rng);
  PhKey b = PhKey::generate(domain, rng);
  PhKey c = PhKey::generate(domain, rng);
  bn::BigUInt m = encode_element(domain, "event e");
  bn::BigUInt ct = c.encrypt(a.encrypt(b.encrypt(m)));
  // Strip keys in an order unrelated to application order.
  EXPECT_EQ(b.decrypt(c.decrypt(a.decrypt(ct))), m);
}

// Eq. (7): distinct plaintexts collide under multi-key encryption only with
// negligible probability — here, never, since x -> x^e is a bijection.
TEST(PohligHellman, DistinctPlaintextsStayDistinct) {
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(7);
  PhKey a = PhKey::generate(domain, rng);
  PhKey b = PhKey::generate(domain, rng);
  std::vector<bn::BigUInt> cts;
  for (int i = 0; i < 32; ++i) {
    bn::BigUInt m = encode_element(domain, "item-" + std::to_string(i));
    cts.push_back(a.encrypt(b.encrypt(m)));
  }
  std::sort(cts.begin(), cts.end());
  EXPECT_EQ(std::adjacent_find(cts.begin(), cts.end()), cts.end());
}

TEST(PohligHellman, EqualPlaintextsMatchUnderSameKeySets) {
  // The secure-set-intersection matching property of Figure 4:
  // E_a(E_b(m)) == E_b(E_a(m)) for the common element regardless of route.
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(8);
  PhKey p1 = PhKey::generate(domain, rng);
  PhKey p2 = PhKey::generate(domain, rng);
  PhKey p3 = PhKey::generate(domain, rng);
  bn::BigUInt e = encode_element(domain, "e");
  bn::BigUInt route132 = p2.encrypt(p3.encrypt(p1.encrypt(e)));
  bn::BigUInt route321 = p1.encrypt(p2.encrypt(p3.encrypt(e)));
  bn::BigUInt route213 = p3.encrypt(p1.encrypt(p2.encrypt(e)));
  EXPECT_EQ(route132, route321);
  EXPECT_EQ(route321, route213);
}

TEST(PohligHellman, EncodeElementInRangeAndDeterministic) {
  PhDomain domain = PhDomain::fixed256();
  bn::BigUInt a1 = encode_element(domain, "alpha");
  bn::BigUInt a2 = encode_element(domain, "alpha");
  bn::BigUInt b = encode_element(domain, "beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_FALSE(a1.is_zero());
  EXPECT_LT(a1, domain.p);
}

TEST(PohligHellman, GeneratedDomainRoundTrips) {
  ChaCha20Rng rng(9);
  PhDomain domain = PhDomain::generate(rng, 64);  // small for test speed
  EXPECT_TRUE(bn::is_probable_prime(domain.p, rng, 16));
  PhKey key = PhKey::generate(domain, rng);
  bn::BigUInt m = encode_element(domain, "round trip");
  EXPECT_EQ(key.decrypt(key.encrypt(m)), m);
}

class PhPermutationTest : public ::testing::TestWithParam<int> {};

// Parameterised sweep: ciphertext equality across shuffled key orders for
// varying party counts (the n-node ring of Section 3.1).
TEST_P(PhPermutationTest, RingOrderIndependence) {
  const int n = GetParam();
  PhDomain domain = PhDomain::fixed256();
  ChaCha20Rng rng(100 + n);
  std::vector<PhKey> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back(PhKey::generate(domain, rng));
  bn::BigUInt m = encode_element(domain, "common");
  bn::BigUInt forward = m, backward = m;
  for (int i = 0; i < n; ++i) forward = keys[i].encrypt(forward);
  for (int i = n; i-- > 0;) backward = keys[i].encrypt(backward);
  EXPECT_EQ(forward, backward);
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, PhPermutationTest,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace dla::crypto
