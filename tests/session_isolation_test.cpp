// Session isolation: many protocol instances of different kinds running
// interleaved on one cluster must not cross-contaminate state (session keys,
// shares, collectors are all keyed by session id).
#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "crypto/pohlig_hellman.hpp"
#include "logm/workload.hpp"

namespace dla::audit {
namespace {

TEST(SessionIsolation, MixedProtocolsInterleaveCorrectly) {
  Cluster cluster(Cluster::Options{logm::paper_schema(), 4, 0, std::nullopt,
                                   /*seed=*/61, false});
  const auto& domain = cluster.config()->ph_domain;
  auto ids = cluster.config()->dla_nodes;

  // --- three set sessions with different ops and participant sets --------
  std::map<SessionId, std::vector<bn::BigUInt>> set_results;
  cluster.dla(0).on_set_result = [&](SessionId s, std::vector<bn::BigUInt> r) {
    set_results[s] = std::move(r);
  };
  // Session 1: intersection {x, common} ^ {common, y} = {common}.
  cluster.dla(0).stage_set_input(1, {crypto::encode_element(domain, "x"),
                                     crypto::encode_element(domain, "common")});
  cluster.dla(1).stage_set_input(1, {crypto::encode_element(domain, "common"),
                                     crypto::encode_element(domain, "y")});
  SetSpec s1;
  s1.session = 1;
  s1.op = SetOp::Intersect;
  s1.participants = {ids[0], ids[1]};
  s1.collector = ids[0];
  s1.observers = {ids[0]};
  // Session 2: union over three nodes.
  cluster.dla(1).stage_set_input(2, {crypto::encode_element(domain, "a")});
  cluster.dla(2).stage_set_input(2, {crypto::encode_element(domain, "b")});
  cluster.dla(3).stage_set_input(2, {crypto::encode_element(domain, "a")});
  SetSpec s2;
  s2.session = 2;
  s2.op = SetOp::Union;
  s2.participants = {ids[1], ids[2], ids[3]};
  s2.collector = ids[2];
  s2.observers = {ids[0]};
  // Session 3: intersection that is empty.
  cluster.dla(2).stage_set_input(3, {crypto::encode_element(domain, "p")});
  cluster.dla(3).stage_set_input(3, {crypto::encode_element(domain, "q")});
  SetSpec s3;
  s3.session = 3;
  s3.op = SetOp::Intersect;
  s3.participants = {ids[2], ids[3]};
  s3.collector = ids[3];
  s3.observers = {ids[0]};

  // --- two sum sessions on overlapping participants -----------------------
  std::map<SessionId, bn::BigUInt> sum_results;
  cluster.dla(0).on_sum_result = [&](SessionId s, bn::BigUInt v) {
    sum_results[s] = std::move(v);
  };
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_sum_input(10, bn::BigUInt(i + 1));        // 1+2+3+4
    cluster.dla(i).stage_sum_input(11, bn::BigUInt(10 * (i + 1))); // 10+...+40
  }
  SumSpec sum10;
  sum10.session = 10;
  sum10.participants = ids;
  sum10.threshold_k = 2;
  sum10.collector = ids[1];
  sum10.observers = {ids[0]};
  SumSpec sum11 = sum10;
  sum11.session = 11;
  sum11.threshold_k = 4;
  sum11.collector = ids[3];

  // --- one comparison session ---------------------------------------------
  std::optional<std::uint32_t> max_winner;
  cluster.dla(0).on_cmp_result = [&](SessionId, CmpOpKind op,
                                     std::uint32_t outcome) {
    if (op == CmpOpKind::Max) max_winner = outcome;
  };
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_cmp_input(20, bn::BigUInt((i == 2) ? 999 : i));
  }
  CmpSpec cmp;
  cmp.session = 20;
  cmp.op = CmpOpKind::Max;
  cmp.participants = ids;
  cmp.ttp = cluster.config()->ttp;
  cmp.observers = {ids[0]};

  // Launch everything before a single simulator step runs.
  cluster.dla(0).start_set_protocol(cluster.sim(), s1);
  cluster.dla(1).start_set_protocol(cluster.sim(), s2);
  cluster.dla(2).start_set_protocol(cluster.sim(), s3);
  cluster.dla(0).start_sum(cluster.sim(), sum10);
  cluster.dla(0).start_sum(cluster.sim(), sum11);
  cluster.dla(0).start_cmp(cluster.sim(), cmp);
  cluster.run();

  ASSERT_EQ(set_results.size(), 3u);
  ASSERT_EQ(set_results[1].size(), 1u);
  EXPECT_EQ(set_results[1][0], crypto::encode_element(domain, "common"));
  ASSERT_EQ(set_results[2].size(), 2u);  // {a, b} deduped
  EXPECT_TRUE(set_results[3].empty());

  ASSERT_EQ(sum_results.size(), 2u);
  EXPECT_EQ(sum_results[10], bn::BigUInt(10));
  EXPECT_EQ(sum_results[11], bn::BigUInt(100));

  ASSERT_TRUE(max_winner.has_value());
  EXPECT_EQ(*max_winner, 2u);
}

}  // namespace
}  // namespace dla::audit
