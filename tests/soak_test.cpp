// Soak test: one cluster, hundreds of interleaved operations — logging,
// glsn-set queries, aggregates, integrity checks, ACL audits — verifying
// that per-session protocol state never leaks across operations and that
// the system's view stays consistent with a shadow model throughout.
#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "baseline/centralized.hpp"
#include "logm/workload.hpp"

namespace dla::audit {
namespace {

TEST(Soak, HundredsOfMixedOperationsStayConsistent) {
  Cluster cluster(Cluster::Options{logm::paper_schema(), 4, 2,
                                   logm::paper_partition(), /*seed=*/71,
                                   /*auditor_users=*/true,
                                   /*certify_reports=*/true});
  Ticket second = cluster.issue_ticket("T2", "u1",
                                       {logm::Op::Read, logm::Op::Write},
                                       /*auditor=*/true);
  cluster.user(1).configure(cluster.config(), second);

  baseline::CentralizedAuditor shadow(logm::paper_schema());
  crypto::ChaCha20Rng rng(72);
  logm::WorkloadSpec spec;
  spec.records = 120;
  auto records = logm::generate_workload(spec, rng);

  std::vector<logm::Glsn> assigned;
  std::size_t queries_checked = 0, integrity_checked = 0;
  std::size_t record_cursor = 0;

  cluster.dla(0).on_integrity_result = [&](SessionId, logm::Glsn, bool ok) {
    EXPECT_TRUE(ok);
    ++integrity_checked;
  };

  for (int round = 0; round < 40; ++round) {
    // 1. Log three records, alternating users.
    for (int j = 0; j < 3 && record_cursor < records.size(); ++j) {
      const auto& rec = records[record_cursor++];
      cluster.user(record_cursor % 2)
          .log_record(cluster.sim(), rec.attrs,
                      [&, rec](std::optional<logm::Glsn> g) {
                        ASSERT_TRUE(g.has_value());
                        assigned.push_back(*g);
                        logm::LogRecord copy = rec;
                        copy.glsn = *g;
                        shadow.log(std::move(copy));
                      });
      cluster.run();
    }
    // 2. A rotating query, checked against the shadow.
    static const char* kQueries[] = {
        "protocl = 'TCP'",
        "id IN ('U0', 'U1') AND C1 < 60",
        "C2 BETWEEN 200.0 AND 700.0",
        "C1 < C2 AND protocl = 'UDP'",
        "NOT (id = 'U2' OR C1 >= 80)",
    };
    const char* q = kQueries[round % 5];
    std::optional<QueryOutcome> outcome;
    cluster.user(round % 2).query(cluster.sim(), q,
                                  [&](QueryOutcome o) { outcome = std::move(o); });
    cluster.run();
    ASSERT_TRUE(outcome.has_value()) << "round " << round << ": " << q;
    ASSERT_TRUE(outcome->ok) << outcome->error;
    EXPECT_TRUE(outcome->certified) << "round " << round;
    EXPECT_EQ(outcome->glsns, shadow.query(q)) << "round " << round << ": " << q;
    ++queries_checked;

    // 3. An aggregate every other round.
    if (round % 2 == 0) {
      std::optional<AggregateOutcome> agg;
      cluster.user(0).aggregate_query(
          cluster.sim(), "protocl = 'UDP'", AggOp::Count, "",
          [&](AggregateOutcome o) { agg = std::move(o); });
      cluster.run();
      ASSERT_TRUE(agg.has_value());
      ASSERT_TRUE(agg->ok) << agg->error;
      EXPECT_DOUBLE_EQ(agg->value,
                       static_cast<double>(shadow.query("protocl = 'UDP'").size()));
    }
    // 4. An integrity circulation every third round.
    if (round % 3 == 0 && !assigned.empty()) {
      cluster.dla(0).start_integrity_check(
          cluster.sim(), 5000 + static_cast<SessionId>(round),
          assigned[static_cast<std::size_t>(rng.next_below(assigned.size()))]);
      cluster.run();
    }
  }

  EXPECT_EQ(queries_checked, 40u);
  EXPECT_GE(integrity_checked, 13u);
  EXPECT_EQ(assigned.size(), 120u);
  // Every node holds exactly one fragment per record; no session residue
  // remains queued in the simulator.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.dla(i).store().size(), 120u) << "node " << i;
  }
  EXPECT_TRUE(cluster.sim().idle());

  // Final ACL consistency audit across the whole history.
  std::optional<bool> consistent;
  cluster.dla(2).on_acl_check = [&](SessionId, bool c) { consistent = c; };
  cluster.dla(2).start_acl_consistency_check(cluster.sim(), 99999);
  cluster.run();
  ASSERT_TRUE(consistent.has_value());
  EXPECT_TRUE(*consistent);
}

}  // namespace
}  // namespace dla::audit
