// Differential testing, two flavours:
//  1. BigUInt arithmetic checked against vectors computed by an independent
//     implementation (CPython's arbitrary-precision ints). Each case packs
//     {a, b, a*b, a/b, a%b, e, m, pow(a, e, m)} in hex.
//  2. Chaos-off vs chaos-on cluster runs: the same workload under benign
//     chaos (duplication + jitter, no loss) must produce the same glsn
//     assignments and query results as the undisturbed run.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "audit/cluster.hpp"
#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "logm/workload.hpp"
#include "net/chaos.hpp"

namespace dla::bn {
namespace {

struct Vector {
  const char* a;
  const char* b;
  const char* product;
  const char* quotient;
  const char* remainder;
  const char* e;
  const char* m;
  const char* pow_result;
};

// Generated offline with CPython (random widths 40..1030 bits; m odd).
constexpr Vector kVectors[] = {
    {"370f1c1f666d6c3d78","c396333d18","2a10d04b8bc8bd1664a99bb35b40","4810d714","97179c4f98","625258ff2c8fc92","b557b83d3550a392a79b2b57fcd5946f","58996284903474bc41dfb5c08e70493a"},
    {"394ea9ef571a7011133237082c19a9510","97908d21563dc98f3332dd7a91f37171c120c7f9453aadaa52599d7467ea00274","21edc2138d0c93c09d2dce4efaa0ebc58623947c024e5899550f2640e167a3a0f3e57242796b1b5a5049f8491df935ab40","0","394ea9ef571a7011133237082c19a9510","c3a4bc439ed8f969","ef8ba6478cc56316194503cf7e9c9a3b","1a3611d3f914db114de520e3b9073dbb"},
    {"97ebd1e202088a2cb8e6940ed06cb72066a0dc713686ea29b6","e8873e304082f4fe61fe72010d0459c01ba","89fdf8783f5b9234a7ab62280904517a0e35ad2769b0cb88c175cd8186ac1f1cf80b91dd00ff46934043c","a7419c4e86f85bf","38ac88d96c014f8bc5de9eba50b3af93df0","1e98a4f41cf53d74","ccbbe2eb390dbba71224175445f4bce5","4c716c30d5ccdf91dc26923630966205"},
    {"9c76e983578e596a449609ea29968b0a52ad2253f7f31f18be","3e4041b96a14a650e9f3d1e","260c1273b4195204b1d540c3afc608816a60e0f26a9ea0d0e6aa9d20cfa3d4e9da88c2c44","2837129682bbf19c46cc83a764ae","1bb0f6e5e275b829671d65a","b8b26d9df1d670e1","f16227506b93692a3f9bcb780387e30f","e93ff116a6453f65e246318cc24789a5"},
    {"36a91b684da8df6c84","a48ca4184384bcfdae5f132a798a4cab11d50046e4b36869d406c7c95d86ccb15","23225d13529ea4bbf375d0df6db0db11331c5b8b4307da7bdd17ba62e346808e57c6c7efded2d1092d4","0","36a91b684da8df6c84","e3b8146624b673dd","8d14ad61a4e426c98b4c434ae91e54cb","12a1261e6d378e6b356ab7c0d90c67ac"},
    {"213a89597c587fe0633070c4a6e5965e55f79c9cae78b0579cd6a54728e326f029903cda1a7bb6e3895b62f2e07ae254fec3924d73a1c60babbeacf32788024e1cdaa31ffd77adc2504eb0e3f89eabb9184e6037899f53737d9b7d2c907f10db877ecbe83d751516287a0c9d3944cd85184baa5fe79d28bc9c46450ab39a6ded41","9780ba11209fbf31b2cf347d4dbded637f1","13aa3c6f3600904e777fa233e56b5eb60120a011d8f46d76664426a3d50783cf3cc35bc7b3d4cbb6c8b79e03d36c6c10a460f28573a88bbc2ae74ab251df878c6416254fb822c447471e85e2ea89c33c7a3586168a9bafd315b89a9784465761cc246ef92fa3c8bb7679eeba9685164bbd8e392259081dcf51211eadce18f1d5a429a764c9903b362719b52e4df7fb1cb5131","3825cfe8c6c04d104603107d6f55ec124dc938d919619f57b335b5617b15a0571941316df39bff690e9c3925924820fa700947ea19f53364269f5495f06870a2c2c24212b38c151fc14139c211e4ed22e8e47739131944c601e517ae061b4c66e7121beab6a01823ee512e9062933ff","486d30b8ee989e74e891a63a4545a4e3132","9cb910941ccc2db8","c9381b310740043ceb6084d6a49c213b","489bd42c582d2e63c147b86151e07117"},
};

class DifferentialVectors : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DifferentialVectors, MultiplicationMatchesCPython) {
  const Vector& v = kVectors[GetParam()];
  EXPECT_EQ(BigUInt::from_hex(v.a) * BigUInt::from_hex(v.b),
            BigUInt::from_hex(v.product));
}

TEST_P(DifferentialVectors, DivModMatchesCPython) {
  const Vector& v = kVectors[GetParam()];
  auto [q, r] = BigUInt::divmod(BigUInt::from_hex(v.a), BigUInt::from_hex(v.b));
  EXPECT_EQ(q, BigUInt::from_hex(v.quotient));
  EXPECT_EQ(r, BigUInt::from_hex(v.remainder));
}

TEST_P(DifferentialVectors, ModExpMatchesCPython) {
  const Vector& v = kVectors[GetParam()];
  BigUInt expected = BigUInt::from_hex(v.pow_result);
  EXPECT_EQ(BigUInt::modexp(BigUInt::from_hex(v.a), BigUInt::from_hex(v.e),
                            BigUInt::from_hex(v.m)),
            expected);
  // The Montgomery fast path must agree (m is odd by construction).
  MontgomeryContext ctx(BigUInt::from_hex(v.m));
  EXPECT_EQ(ctx.pow(BigUInt::from_hex(v.a), BigUInt::from_hex(v.e)), expected);
}

TEST_P(DifferentialVectors, RoundTripIdentity) {
  const Vector& v = kVectors[GetParam()];
  BigUInt a = BigUInt::from_hex(v.a);
  BigUInt b = BigUInt::from_hex(v.b);
  EXPECT_EQ(BigUInt::from_hex(v.quotient) * b + BigUInt::from_hex(v.remainder),
            a);
}

INSTANTIATE_TEST_SUITE_P(Cases, DifferentialVectors,
                         ::testing::Range<std::size_t>(0, 6));

}  // namespace
}  // namespace dla::bn

namespace dla::audit {
namespace {

struct ClusterRunResult {
  std::vector<logm::Glsn> glsns;  // assignment order
  std::vector<std::vector<logm::Glsn>> query_glsns;
  std::uint64_t duplicates_injected = 0;
};

// Logs Table 1 sequentially and runs two representative queries, optionally
// under a chaos engine owned by the caller (void so ASSERT_* can bail).
void run_cluster_workload(net::ChaosEngine* chaos, ClusterRunResult& out) {
  Cluster cluster(Cluster::Options{logm::paper_schema(), 4, 1,
                                   logm::paper_partition(), /*seed=*/13,
                                   /*auditor_users=*/true});
  if (chaos) cluster.sim().set_chaos(chaos);
  for (const auto& rec : logm::paper_table1_records()) {
    std::optional<logm::Glsn> assigned;
    cluster.user(0).log_record(
        cluster.sim(), rec.attrs,
        [&assigned](std::optional<logm::Glsn> g) { assigned = g; });
    cluster.run();
    ASSERT_TRUE(assigned.has_value()) << "log did not complete";
    out.glsns.push_back(*assigned);
  }
  for (const char* criterion :
       {"id = 'U1' AND protocl = 'UDP'", "id = 'U3' OR protocl = 'TCP'"}) {
    std::optional<QueryOutcome> outcome;
    cluster.user(0).query(cluster.sim(), criterion,
                          [&](QueryOutcome o) { outcome = std::move(o); });
    cluster.run();
    ASSERT_TRUE(outcome.has_value()) << criterion;
    ASSERT_TRUE(outcome->ok) << criterion << ": " << outcome->error;
    std::sort(outcome->glsns.begin(), outcome->glsns.end());
    out.query_glsns.push_back(outcome->glsns);
  }
  out.duplicates_injected = cluster.sim().stats().duplicates_injected;
}

// Benign chaos (at-least-once delivery + jitter, no loss) must be
// indistinguishable from the undisturbed run at the API surface: identical
// glsn assignments and identical query results, for every chaos seed tried.
TEST(ChaosDifferential, BenignChaosMatchesUndisturbedRun) {
  ClusterRunResult baseline;
  run_cluster_workload(nullptr, baseline);
  if (HasFatalFailure()) return;

  net::ChaosConfig cfg;
  cfg.dup_prob = 0.25;
  cfg.jitter_prob = 0.40;
  cfg.jitter_max = 50;
  std::uint64_t total_dups = 0;
  for (std::uint64_t seed : {3u, 17u, 98u}) {
    net::ChaosEngine chaos(seed, cfg);
    ClusterRunResult chaotic;
    run_cluster_workload(&chaos, chaotic);
    if (HasFatalFailure()) return;
    EXPECT_EQ(chaotic.glsns, baseline.glsns) << "chaos seed " << seed;
    EXPECT_EQ(chaotic.query_glsns, baseline.query_glsns)
        << "chaos seed " << seed;
    total_dups += chaotic.duplicates_injected;
  }
  EXPECT_EQ(baseline.duplicates_injected, 0u);
  EXPECT_GT(total_dups, 0u);  // the differential actually exercised dup paths
}

}  // namespace
}  // namespace dla::audit
