// Shared workload-generation helpers for tests, benchmarks and the traffic
// harness driver.
//
// Three near-identical copies of "seed an RNG, build a WorkloadSpec, call
// logm::generate_workload, pour the records into stores / a cluster" used
// to live in tests/local_query_test.cpp, tests/chaos_explorer_test.cpp and
// bench/bench_query_processing.cpp. They are folded together here so every
// driver draws the exact same deterministic streams: a (seed, count) pair
// names one record stream everywhere, and the canonical criteria suites are
// defined once. tests/workload_gen_test.cpp pins the seed-determinism
// contract.
//
// Header-only on purpose: consumed by test binaries, bench binaries and
// tools/dla_traffic alike without a library target.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/cluster.hpp"
#include "crypto/rng.hpp"
#include "logm/store.hpp"
#include "logm/workload.hpp"

namespace dla::testkit {

// The canonical seeded record stream: every consumer that needs `count`
// generated e-commerce records at seed `seed` must call this, so identical
// (seed, count) pairs are bit-identical across binaries.
inline std::vector<logm::LogRecord> make_records(std::uint64_t seed,
                                                 std::size_t count,
                                                 std::size_t users = 10) {
  crypto::ChaCha20Rng rng(seed);
  logm::WorkloadSpec spec;
  spec.records = count;
  spec.users = users;
  return logm::generate_workload(spec, rng);
}

// Pour records into a FragmentStore; `indexed = false` yields the naive
// scan baseline store used by differential tests.
inline logm::FragmentStore make_store(
    const std::vector<logm::LogRecord>& records, bool indexed = true) {
  logm::FragmentStore store;
  if (!indexed) store.set_indexing(false);
  for (const logm::LogRecord& rec : records) {
    store.put(logm::Fragment{rec.glsn, rec.attrs});
  }
  return store;
}

// The [2/5, 3/5] quantile bounds of the Time column — the mid-density range
// criterion of the scaling suite is built from these.
inline std::pair<std::int64_t, std::int64_t> time_quantiles(
    const std::vector<logm::LogRecord>& records) {
  std::vector<std::int64_t> times;
  times.reserve(records.size());
  for (const auto& rec : records) times.push_back(rec.attrs.at("Time").as_int());
  std::sort(times.begin(), times.end());
  return {times[times.size() * 2 / 5], times[times.size() * 3 / 5]};
}

// Cluster-machinery criteria (the chaos explorer's suite): a single-node
// local plan, the ring set intersection, a set union, and the TTP-mediated
// secure comparison joined with an intersection.
inline const std::vector<std::string>& cluster_criteria() {
  static const std::vector<std::string> kCriteria = {
      "id = 'U1' AND C2 < 100.0",
      "id = 'U1' AND protocl = 'UDP'",
      "id = 'U3' OR protocl = 'TCP'",
      "C1 < C2 AND Tid = 'T1100267'",
  };
  return kCriteria;
}

// Local-engine scaling suite (bench_query_processing): one criterion per
// access-path shape. The Time range is derived from the workload's own
// quantiles so its selectivity tracks the record count.
struct ScalingCriterion {
  std::string text;
  const char* kind;
};

inline std::vector<ScalingCriterion> scaling_suite(std::int64_t t_lo,
                                                   std::int64_t t_hi) {
  return {
      {"id = 'U3'", "equality"},
      {"protocl = 'TCP'", "equality"},
      {"C2 > 900.0", "range"},
      {"Time >= " + std::to_string(t_lo) +
           " AND Time <= " + std::to_string(t_hi),
       "range"},
      {"id = 'U3' AND C2 > 500.0", "conjunction"},
      {"id IN ('U1', 'U3', 'U5')", "in-fan"},
      {"C1 < C2", "fallback"},
  };
}

// The paper-table cluster the chaos explorer sweeps. `indexed` toggles the
// FragmentStore columnar indexes (the oracle runs scan-mode so tier-A
// equality is an indexed-vs-scan differential); `set_chunk_size` likewise
// pits chunked ring streams against the monolithic oracle (0 = legacy).
inline audit::Cluster make_paper_cluster(std::uint64_t seed,
                                         bool indexed = true,
                                         std::size_t set_chunk_size = 2) {
  audit::Cluster::Options opts;
  opts.schema = logm::paper_schema();
  opts.dla_count = 4;
  opts.user_count = 1;
  opts.partition = logm::paper_partition();
  opts.seed = seed;
  opts.auditor_users = true;
  opts.set_chunk_size = set_chunk_size;
  audit::Cluster cluster(std::move(opts));
  if (!indexed) {
    for (std::size_t i = 0; i < cluster.dla_count(); ++i) {
      cluster.dla(i).store().set_indexing(false);
      cluster.dla(i).replica_store().set_indexing(false);
    }
  }
  return cluster;
}

// One paper workload pass: sequentially log Table 1, run every
// cluster_criteria() entry, then audit the first logged glsn. Each step
// drains the simulator before the next is issued, so glsn assignment order
// is the issue order regardless of chaos timing.
struct PaperWorkloadRun {
  // Per paper-table record: assigned glsn, or nullopt when the log never
  // completed (only possible under lossy chaos).
  std::vector<std::optional<logm::Glsn>> glsns;
  // Per cluster_criteria() entry: outcome, or nullopt if no callback fired.
  std::vector<std::optional<audit::QueryOutcome>> queries;
  std::optional<bool> integrity_ok;
};

// ---- process memory probes (storage benchmarks) ---------------------------
// Current and peak resident set in KiB from /proc/self/status; 0 on
// platforms without procfs (the storage benches then report rss_kb: 0 and
// the RSS comparison is informational-only).
inline std::size_t read_proc_status_kb(const char* key) {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  const std::string prefix = std::string(key) + ":";
  while (std::getline(status, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    std::size_t kb = 0;
    for (char c : line) {
      if (c >= '0' && c <= '9') {
        kb = kb * 10 + static_cast<std::size_t>(c - '0');
      }
    }
    return kb;
  }
#else
  (void)key;
#endif
  return 0;
}

inline std::size_t read_rss_kb() { return read_proc_status_kb("VmRSS"); }
inline std::size_t read_hwm_kb() { return read_proc_status_kb("VmHWM"); }

inline PaperWorkloadRun run_paper_workload(audit::Cluster& cluster) {
  PaperWorkloadRun out;
  auto records = logm::paper_table1_records();
  out.glsns.resize(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    cluster.user(0).log_record(
        cluster.sim(), records[i].attrs,
        [&out, i](std::optional<logm::Glsn> g) { out.glsns[i] = g; });
    cluster.run();
  }
  out.queries.resize(cluster_criteria().size());
  for (std::size_t i = 0; i < cluster_criteria().size(); ++i) {
    cluster.user(0).query(
        cluster.sim(), cluster_criteria()[i],
        [&out, i](audit::QueryOutcome o) { out.queries[i] = std::move(o); });
    cluster.run();
  }
  for (const auto& g : out.glsns) {
    if (!g) continue;
    cluster.dla(0).on_integrity_result =
        [&out](audit::SessionId, logm::Glsn, bool ok) {
          out.integrity_ok = ok;
        };
    cluster.dla(0).start_integrity_check(cluster.sim(), 0xC8A05u, *g);
    cluster.run();
    cluster.dla(0).on_integrity_result = nullptr;
    break;
  }
  return out;
}

}  // namespace dla::testkit
