// Tests for Miller-Rabin and prime generation.
#include "bignum/prime.hpp"

#include <gtest/gtest.h>

#include "crypto/rng.hpp"

namespace dla::bn {
namespace {

using crypto::ChaCha20Rng;

TEST(Prime, SmallPrimesAccepted) {
  ChaCha20Rng rng(1);
  for (std::uint64_t p : {2, 3, 5, 7, 11, 13, 97, 101, 251}) {
    EXPECT_TRUE(is_probable_prime(BigUInt(p), rng)) << p;
  }
}

TEST(Prime, SmallCompositesRejected) {
  ChaCha20Rng rng(2);
  for (std::uint64_t c : {0, 1, 4, 6, 9, 15, 21, 25, 100, 255, 1001}) {
    EXPECT_FALSE(is_probable_prime(BigUInt(c), rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  ChaCha20Rng rng(3);
  for (std::uint64_t c : {561, 1105, 1729, 2465, 2821, 6601, 8911, 41041}) {
    EXPECT_FALSE(is_probable_prime(BigUInt(c), rng)) << c;
  }
}

TEST(Prime, KnownLargePrimeAccepted) {
  ChaCha20Rng rng(4);
  // 2^127 - 1 (Mersenne prime).
  BigUInt m127 = (BigUInt(1) << 127) - BigUInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
}

TEST(Prime, KnownLargeCompositeRejected) {
  ChaCha20Rng rng(5);
  // 2^128 + 1 = 59649589127497217 * 5704689200685129054721 (F7 factor known).
  BigUInt f7 = (BigUInt(1) << 128) + BigUInt(1);
  EXPECT_FALSE(is_probable_prime(f7, rng));
}

TEST(Prime, FixedSafePrimesVerify) {
  // The constants embedded in the crypto layer must actually be safe primes.
  ChaCha20Rng rng(6);
  for (const char* hex :
       {"dc202a2e41eb3f8b", "b253d0f212cac9fb474dbafa53e183bf",
        "dc9db496edbc0c1c97972e233e1a191fdb56a14df65a307ca1cea9ebe0fb9b93"}) {
    BigUInt p = BigUInt::from_hex(hex);
    EXPECT_TRUE(is_probable_prime(p, rng)) << hex;
    BigUInt q = (p - BigUInt(1)) >> 1;
    EXPECT_TRUE(is_probable_prime(q, rng)) << hex << " (q)";
  }
}

TEST(Prime, GeneratePrimeHasRequestedWidth) {
  ChaCha20Rng rng(7);
  for (std::size_t bits : {16u, 32u, 64u, 128u}) {
    BigUInt p = generate_prime(rng, bits, 16);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng, 16));
  }
}

TEST(Prime, GenerateSafePrimeIsSafe) {
  ChaCha20Rng rng(8);
  BigUInt p = generate_safe_prime(rng, 64, 16);
  EXPECT_EQ(p.bit_length(), 64u);
  EXPECT_TRUE(is_probable_prime(p, rng, 16));
  EXPECT_TRUE(is_probable_prime((p - BigUInt(1)) >> 1, rng, 16));
}

TEST(Prime, GenerateRejectsTinyWidths) {
  ChaCha20Rng rng(9);
  EXPECT_THROW(generate_prime(rng, 1), std::invalid_argument);
  EXPECT_THROW(generate_safe_prime(rng, 2), std::invalid_argument);
}

TEST(Prime, DeterministicForFixedSeed) {
  ChaCha20Rng a(42), b(42);
  EXPECT_EQ(generate_prime(a, 48, 12), generate_prime(b, 48, 12));
}

}  // namespace
}  // namespace dla::bn
