// Tests for the discrete-event network simulator.
#include "net/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dla::net {
namespace {

// Records every delivery for inspection.
class Recorder : public Node {
 public:
  void on_message(Transport&, const Message& msg) override {
    received.push_back(msg);
  }
  void on_timer(Transport&, std::uint64_t timer_id) override {
    timers.push_back(timer_id);
  }
  std::vector<Message> received;
  std::vector<std::uint64_t> timers;
};

// Forwards each message to a fixed next hop, for ring tests.
class Forwarder : public Node {
 public:
  explicit Forwarder(NodeId next) : next_(next) {}
  void on_message(Transport& sim, const Message& msg) override {
    ++hops;
    if (msg.payload[0] > 0) {
      Bytes payload = msg.payload;
      --payload[0];
      sim.send(id(), next_, msg.type, std::move(payload));
    }
  }
  int hops = 0;

 private:
  NodeId next_;
};

TEST(Simulator, DeliversMessageWithLatency) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.send(ida, idb, 7, {1, 2, 3});
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].src, ida);
  EXPECT_EQ(b.received[0].type, 7u);
  EXPECT_EQ(b.received[0].payload, Bytes({1, 2, 3}));
  EXPECT_GT(sim.now(), 0u);  // latency advanced the clock
}

TEST(Simulator, SendToUnknownNodeThrows) {
  Simulator sim;
  Recorder a;
  NodeId ida = sim.add_node(a);
  EXPECT_THROW(sim.send(ida, 99, 0, {}), std::out_of_range);
  EXPECT_THROW(sim.set_timer(99, 10), std::out_of_range);
}

TEST(Simulator, DeterministicOrderingForSimultaneousEvents) {
  // Two messages sent at the same instant with identical latency must be
  // delivered in send order (sequence-number tie-break).
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.set_latency_model([](NodeId, NodeId, std::size_t) { return 50; });
  sim.send(ida, idb, 1, {});
  sim.send(ida, idb, 2, {});
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].type, 1u);
  EXPECT_EQ(b.received[1].type, 2u);
}

TEST(Simulator, RingForwardingTerminates) {
  Simulator sim;
  Forwarder f1(2), f2(0);
  Recorder sink;
  sim.add_node(sink);                  // id 0
  NodeId id1 = sim.add_node(f1);       // id 1 -> forwards to 2
  NodeId id2 = sim.add_node(f2);       // id 2 -> forwards to 0
  (void)id2;
  sim.send(0, id1, 0, {4});            // TTL 4: bounces 1->2->0
  sim.run();
  EXPECT_GT(f1.hops + f2.hops, 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, TimerFires) {
  Simulator sim;
  Recorder a;
  NodeId ida = sim.add_node(a);
  std::uint64_t t1 = sim.set_timer(ida, 500);
  std::uint64_t t2 = sim.set_timer(ida, 100);
  sim.run();
  ASSERT_EQ(a.timers.size(), 2u);
  EXPECT_EQ(a.timers[0], t2);  // earlier deadline first
  EXPECT_EQ(a.timers[1], t1);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  Recorder a;
  NodeId ida = sim.add_node(a);
  sim.set_timer(ida, 100);
  sim.set_timer(ida, 10000);
  sim.run(5000);
  EXPECT_EQ(a.timers.size(), 1u);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(a.timers.size(), 2u);
}

TEST(Simulator, CrashedNodeReceivesNothing) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.crash(idb);
  sim.send(ida, idb, 1, {});
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.stats().messages_dropped, 1u);
  EXPECT_TRUE(sim.is_crashed(idb));
}

TEST(Simulator, CrashDropsInFlightMessages) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.send(ida, idb, 1, {});
  sim.crash(idb);  // message already queued but not yet delivered
  sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(Simulator, RecoveredNodeReceivesAgain) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.crash(idb);
  sim.recover(idb);
  sim.send(ida, idb, 1, {});
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Simulator, PartitionBlocksCrossTraffic) {
  Simulator sim;
  Recorder a, b, c;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  NodeId idc = sim.add_node(c);
  sim.partition({ida});  // a alone vs {b, c}
  sim.send(ida, idb, 1, {});
  sim.send(idb, idc, 2, {});
  sim.run();
  EXPECT_TRUE(b.received.empty());       // crossed the cut
  EXPECT_EQ(c.received.size(), 1u);      // same side
  sim.heal_partition();
  sim.send(ida, idb, 3, {});
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Simulator, DropPolicyApplies) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.set_drop_policy([](const Message& m) { return m.type == 13; });
  sim.send(ida, idb, 13, {});
  sim.send(ida, idb, 14, {});
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].type, 14u);
  EXPECT_EQ(sim.stats().messages_dropped, 1u);
}

TEST(Simulator, StatsAccounting) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.send(ida, idb, 1, Bytes(100));
  sim.send(idb, ida, 2, Bytes(50));
  sim.run();
  const auto& stats = sim.stats();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.messages_delivered, 2u);
  EXPECT_EQ(stats.bytes_sent, 150u);
  EXPECT_EQ(stats.per_link.at({ida, idb}).bytes, 100u);
  EXPECT_EQ(stats.per_link.at({idb, ida}).messages, 1u);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().messages_sent, 0u);
}

TEST(Simulator, CancelledTimerNeitherFiresNorAdvancesClock) {
  Simulator sim;
  Recorder a;
  NodeId ida = sim.add_node(a);
  std::uint64_t t1 = sim.set_timer(ida, 100);
  std::uint64_t t2 = sim.set_timer(ida, 50000);
  sim.cancel_timer(t2);
  sim.run();
  ASSERT_EQ(a.timers.size(), 1u);
  EXPECT_EQ(a.timers[0], t1);
  EXPECT_EQ(sim.now(), 100u);  // the cancelled slot did not move the clock
  sim.cancel_timer(999);       // unknown id: no-op
}

TEST(Simulator, CancelTimerBookkeepingStaysBounded) {
  // Regression: cancel_timer used to record every id it was handed, so
  // cancelling unknown or already-fired timers grew the tombstone set
  // forever. Only genuinely pending timers may leave a tombstone, and the
  // tombstone must be reclaimed when the dead slot pops.
  Simulator sim;
  Recorder a;
  NodeId ida = sim.add_node(a);
  sim.cancel_timer(424242);  // never existed
  EXPECT_EQ(sim.cancelled_timer_backlog(), 0u);

  std::uint64_t fired = sim.set_timer(ida, 10);
  sim.run();
  sim.cancel_timer(fired);  // already fired
  EXPECT_EQ(sim.cancelled_timer_backlog(), 0u);

  std::uint64_t pending = sim.set_timer(ida, 100);
  sim.cancel_timer(pending);
  EXPECT_EQ(sim.cancelled_timer_backlog(), 1u);
  sim.cancel_timer(pending);  // idempotent: one tombstone per timer
  EXPECT_EQ(sim.cancelled_timer_backlog(), 1u);
  sim.run();
  EXPECT_EQ(sim.cancelled_timer_backlog(), 0u);
  ASSERT_EQ(a.timers.size(), 1u);
  EXPECT_EQ(a.timers[0], fired);
}

TEST(Simulator, BandwidthTransmitTimeRoundsUp) {
  // Regression: integer division truncated sub-microsecond transmit times
  // to zero, so tiny payloads serialised infinitely fast on a busy link.
  // Every payload must occupy the link for at least one tick.
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.set_latency_model([](NodeId, NodeId, std::size_t) { return 10; });
  sim.set_link_bandwidth(1000.0);  // 1-byte payload: 0.001 us, rounds to 1
  sim.send(ida, idb, 1, Bytes(1));
  sim.send(ida, idb, 2, Bytes(1));
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  // First: departs 0, transmit ceil(0.001) = 1, +10 propagation = 11.
  // Second: waits until 1, transmit 1, +10 = 12 -- distinct arrival times.
  EXPECT_EQ(sim.now(), 12u);
}

TEST(Simulator, BandwidthModelSerialisesOneLink) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.set_latency_model([](NodeId, NodeId, std::size_t) { return 10; });
  sim.set_link_bandwidth(1.0);  // 1 byte/us
  // Two 100-byte messages at t=0 on the same link: the second queues.
  sim.send(ida, idb, 1, Bytes(100));
  sim.send(ida, idb, 2, Bytes(100));
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  // First: departs 0, transmit 100, +10 propagation = 110.
  // Second: waits until 100, transmit 100, +10 = 210.
  EXPECT_EQ(sim.now(), 210u);
}

TEST(Simulator, BandwidthModelLinksAreIndependent) {
  Simulator sim;
  Recorder a, b, c;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  NodeId idc = sim.add_node(c);
  sim.set_latency_model([](NodeId, NodeId, std::size_t) { return 10; });
  sim.set_link_bandwidth(1.0);
  sim.send(ida, idb, 1, Bytes(100));
  sim.send(ida, idc, 2, Bytes(100));  // different link: no queueing
  sim.run();
  EXPECT_EQ(sim.now(), 110u);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(Simulator, BandwidthZeroRestoresLatencyModel) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.set_latency_model([](NodeId, NodeId, std::size_t bytes) {
    return 10 + bytes;
  });
  sim.set_link_bandwidth(2.0);
  sim.set_link_bandwidth(0);  // back to the pure latency model
  sim.send(ida, idb, 1, Bytes(90));
  sim.run();
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, LatencyModelScalesWithBytes) {
  Simulator sim;
  Recorder a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  sim.set_latency_model([](NodeId, NodeId, std::size_t bytes) {
    return 10 + bytes;
  });
  sim.send(ida, idb, 1, Bytes(90));
  sim.run();
  EXPECT_EQ(sim.now(), 100u);
}

}  // namespace
}  // namespace dla::net
