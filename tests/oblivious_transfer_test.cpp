// Tests for the EGL 1-out-of-2 oblivious transfer (classical-MPC substrate).
#include "crypto/oblivious_transfer.hpp"

#include <gtest/gtest.h>

namespace dla::crypto {
namespace {

struct OtFixture : ::testing::Test {
  RsaKeyPair key = RsaKeyPair::fixed512();
  ChaCha20Rng sender_rng{1};
  ChaCha20Rng receiver_rng{2};
};

TEST_F(OtFixture, ReceiverGetsChosenMessageBit0) {
  ObliviousTransferSender sender(key, sender_rng);
  ObliviousTransferReceiver receiver(key.public_key(), receiver_rng);
  bn::BigUInt m0(11111), m1(22222);
  auto offer = sender.make_offer();
  auto v = receiver.choose(offer, false);
  auto reply = sender.respond(offer, v, m0, m1);
  EXPECT_EQ(receiver.recover(reply), m0);
}

TEST_F(OtFixture, ReceiverGetsChosenMessageBit1) {
  ObliviousTransferSender sender(key, sender_rng);
  ObliviousTransferReceiver receiver(key.public_key(), receiver_rng);
  bn::BigUInt m0(11111), m1(22222);
  auto offer = sender.make_offer();
  auto v = receiver.choose(offer, true);
  auto reply = sender.respond(offer, v, m0, m1);
  EXPECT_EQ(receiver.recover(reply), m1);
}

TEST_F(OtFixture, UnchosenMessageStaysMasked) {
  ObliviousTransferSender sender(key, sender_rng);
  ObliviousTransferReceiver receiver(key.public_key(), receiver_rng);
  bn::BigUInt m0(11111), m1(22222);
  auto offer = sender.make_offer();
  auto v = receiver.choose(offer, false);
  auto reply = sender.respond(offer, v, m0, m1);
  // Attempting to strip the blind from the other slot yields garbage: the
  // mask (v - x1)^d is unrelated to the receiver's r.
  bn::BigUInt n = key.public_key().n;
  bn::BigUInt naive = (reply.m1_masked + n - receiver.recover(reply) % n) % n;
  EXPECT_NE(naive, m1);
}

TEST_F(OtFixture, ManyRoundTripsRandomBits) {
  for (int i = 0; i < 10; ++i) {
    ObliviousTransferSender sender(key, sender_rng);
    ObliviousTransferReceiver receiver(key.public_key(), receiver_rng);
    bool b = (receiver_rng.next_u64() & 1) != 0;
    bn::BigUInt m0 = bn::BigUInt::random_below(sender_rng, key.public_key().n);
    bn::BigUInt m1 = bn::BigUInt::random_below(sender_rng, key.public_key().n);
    auto offer = sender.make_offer();
    auto v = receiver.choose(offer, b);
    auto reply = sender.respond(offer, v, m0, m1);
    EXPECT_EQ(receiver.recover(reply), b ? m1 : m0);
  }
}

TEST_F(OtFixture, CostAccountingTracksModexps) {
  ObliviousTransferSender sender(key, sender_rng);
  ObliviousTransferReceiver receiver(key.public_key(), receiver_rng);
  auto offer = sender.make_offer();
  auto v = receiver.choose(offer, true);
  (void)sender.respond(offer, v, bn::BigUInt(1), bn::BigUInt(2));
  EXPECT_EQ(sender.cost().modexps, 2u);   // two private-key ops
  EXPECT_EQ(receiver.cost().modexps, 1u); // one public-key op
  EXPECT_EQ(sender.cost().messages + receiver.cost().messages, 3u);
}

}  // namespace
}  // namespace dla::crypto
