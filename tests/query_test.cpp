// Tests for the auditing-criteria language: parsing, normalization to the
// paper's conjunctive form, classification, and evaluation.
#include "audit/query.hpp"

#include <gtest/gtest.h>

#include "logm/workload.hpp"

namespace dla::audit {
namespace {

logm::Schema schema() { return logm::paper_schema(); }

TEST(QueryParse, SimplePredicate) {
  Expr e = parse("Time > 202000", schema());
  ASSERT_EQ(e.kind, Expr::Kind::Pred);
  EXPECT_EQ(e.pred.lhs, "Time");
  EXPECT_EQ(e.pred.op, CmpOp::Gt);
  EXPECT_FALSE(e.pred.rhs_is_attr);
  EXPECT_EQ(e.pred.rhs_const.as_int(), 202000);
}

TEST(QueryParse, AllOperators) {
  for (auto [text, op] :
       std::vector<std::pair<const char*, CmpOp>>{{"<", CmpOp::Lt},
                                                  {"<=", CmpOp::Le},
                                                  {">", CmpOp::Gt},
                                                  {">=", CmpOp::Ge},
                                                  {"=", CmpOp::Eq},
                                                  {"==", CmpOp::Eq},
                                                  {"!=", CmpOp::Ne}}) {
    Expr e = parse(std::string("C1 ") + text + " 5", schema());
    EXPECT_EQ(e.pred.op, op) << text;
  }
}

TEST(QueryParse, TextLiteralsAndQuotes) {
  Expr e = parse("id = 'U1'", schema());
  EXPECT_EQ(e.pred.rhs_const.as_text(), "U1");
  Expr e2 = parse("protocl != \"UDP\"", schema());
  EXPECT_EQ(e2.pred.op, CmpOp::Ne);
}

TEST(QueryParse, AttrVsAttr) {
  Expr e = parse("C1 < Time", schema());
  EXPECT_TRUE(e.pred.rhs_is_attr);
  EXPECT_EQ(e.pred.rhs_attr, "Time");
}

TEST(QueryParse, BooleanStructureAndPrecedence) {
  // AND binds tighter than OR.
  Expr e = parse("C1 > 1 OR C1 < 5 AND id = 'U1'", schema());
  ASSERT_EQ(e.kind, Expr::Kind::Or);
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_EQ(e.children[0].kind, Expr::Kind::Pred);
  EXPECT_EQ(e.children[1].kind, Expr::Kind::And);
}

TEST(QueryParse, ParensOverridePrecedence) {
  Expr e = parse("(C1 > 1 OR C1 < 5) AND id = 'U1'", schema());
  ASSERT_EQ(e.kind, Expr::Kind::And);
  EXPECT_EQ(e.children[0].kind, Expr::Kind::Or);
}

TEST(QueryParse, KeywordsCaseInsensitive) {
  Expr e = parse("C1 > 1 and not C1 < 5 or id = 'U1'", schema());
  EXPECT_EQ(e.kind, Expr::Kind::Or);
}

TEST(QueryParse, RealLiterals) {
  Expr e = parse("C2 >= 23.45", schema());
  EXPECT_DOUBLE_EQ(e.pred.rhs_const.as_real(), 23.45);
}

TEST(QueryParse, Errors) {
  EXPECT_THROW(parse("", schema()), ParseError);
  EXPECT_THROW(parse("nope = 1", schema()), ParseError);            // unknown attr
  EXPECT_THROW(parse("Time >", schema()), ParseError);              // missing rhs
  EXPECT_THROW(parse("Time > 1 AND", schema()), ParseError);        // dangling
  EXPECT_THROW(parse("Time > 1)", schema()), ParseError);           // stray paren
  EXPECT_THROW(parse("(Time > 1", schema()), ParseError);           // unclosed
  EXPECT_THROW(parse("id > 'U1'", schema()), ParseError);           // text with >
  EXPECT_THROW(parse("id = 5", schema()), ParseError);              // type clash
  EXPECT_THROW(parse("Time = 'x'", schema()), ParseError);          // type clash
  EXPECT_THROW(parse("Time = id", schema()), ParseError);           // attr types
  EXPECT_THROW(parse("id < Tid", schema()), ParseError);            // text order
  EXPECT_THROW(parse("Time # 5", schema()), ParseError);            // bad op
  EXPECT_THROW(parse("id = 'unterminated", schema()), ParseError);
}

TEST(QueryNormalize, NotOnPredicateNegatesOperator) {
  Expr e = push_negations(parse("NOT Time > 5", schema()));
  ASSERT_EQ(e.kind, Expr::Kind::Pred);
  EXPECT_EQ(e.pred.op, CmpOp::Le);
}

TEST(QueryNormalize, DoubleNegationCancels) {
  Expr e = push_negations(parse("NOT NOT Time > 5", schema()));
  EXPECT_EQ(e.pred.op, CmpOp::Gt);
}

TEST(QueryNormalize, DeMorganAnd) {
  Expr e = push_negations(parse("NOT (Time > 5 AND id = 'U1')", schema()));
  ASSERT_EQ(e.kind, Expr::Kind::Or);
  EXPECT_EQ(e.children[0].pred.op, CmpOp::Le);
  EXPECT_EQ(e.children[1].pred.op, CmpOp::Ne);
}

TEST(QueryNormalize, DeMorganOr) {
  Expr e = push_negations(parse("NOT (Time > 5 OR id = 'U1')", schema()));
  ASSERT_EQ(e.kind, Expr::Kind::And);
  EXPECT_EQ(e.children[0].pred.op, CmpOp::Le);
  EXPECT_EQ(e.children[1].pred.op, CmpOp::Ne);
}

TEST(QueryNormalize, ConjunctiveFlattening) {
  Expr e = push_negations(
      parse("Time > 1 AND (id = 'U1' AND (C1 < 5 AND C2 > 2.0))", schema()));
  auto conjuncts = to_conjunctive(e);
  EXPECT_EQ(conjuncts.size(), 4u);
}

TEST(QueryNormalize, OrStaysOneSubquery) {
  Expr e = push_negations(parse("Time > 1 OR id = 'U1'", schema()));
  auto conjuncts = to_conjunctive(e);
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(QueryNormalize, RejectsUnnormalizedInput) {
  Expr e = parse("NOT Time > 5", schema());
  EXPECT_THROW(to_conjunctive(e), std::invalid_argument);
}

TEST(QueryAttrs, CollectsBothSides) {
  Expr e = parse("Time > 1 AND C1 < Time AND id = 'U1'", schema());
  auto attrs = attributes_of(e);
  EXPECT_EQ(attrs, (std::set<std::string>{"Time", "C1", "id"}));
}

TEST(QueryStats, CountsAtomicAndCross) {
  Expr e = parse("Time > 1 AND C1 < Time AND id = Tid", schema());
  auto stats = predicate_stats(e);
  EXPECT_EQ(stats.atomic, 3u);
  EXPECT_EQ(stats.cross_attr, 2u);
}

TEST(QueryClassify, LocalVsCross) {
  auto partition = logm::paper_partition();
  // id and C2 both live on P1 -> local; Time (P0) with id (P1) -> cross.
  Expr local = push_negations(parse("id = 'U1' AND C2 > 10.0", schema()));
  Expr cross = push_negations(parse("Time > 1 AND id = 'U1'", schema()));
  auto sq_local = classify(to_conjunctive(local), partition);
  auto sq_cross = classify({cross}, partition);
  for (const auto& sq : sq_local) EXPECT_TRUE(sq.local());
  ASSERT_EQ(sq_cross.size(), 1u);
  EXPECT_FALSE(sq_cross[0].local());
  EXPECT_EQ(sq_cross[0].nodes, (std::set<std::size_t>{0, 1}));
}

TEST(QueryEvaluate, AgainstPaperRecords) {
  auto records = logm::paper_table1_records();
  Expr e = parse("id = 'U1' AND protocl = 'UDP'", schema());
  int matches = 0;
  for (const auto& rec : records) {
    if (evaluate(e, rec.attrs)) ++matches;
  }
  EXPECT_EQ(matches, 2);  // 139aef78 and 139aef80
}

TEST(QueryEvaluate, NotAndMixedConnectives) {
  auto records = logm::paper_table1_records();
  Expr e = parse("NOT protocl = 'UDP' OR C2 > 300.0", schema());
  std::vector<logm::Glsn> hits;
  for (const auto& rec : records) {
    if (evaluate(e, rec.attrs)) hits.push_back(rec.glsn);
  }
  // TCP rows: ..81, ..82; UDP with C2>300: ..79.
  EXPECT_EQ(hits, (std::vector<logm::Glsn>{0x139aef79, 0x139aef81,
                                           0x139aef82}));
}

TEST(QueryEvaluate, AttrVsAttr) {
  std::map<std::string, logm::Value> attrs = {
      {"Time", logm::Value(std::int64_t{100})},
      {"C1", logm::Value(std::int64_t{50})}};
  EXPECT_TRUE(evaluate(parse("C1 < Time", schema()), attrs));
  EXPECT_FALSE(evaluate(parse("C1 >= Time", schema()), attrs));
}

TEST(QueryEvaluate, MissingAttributeThrows) {
  std::map<std::string, logm::Value> attrs;
  EXPECT_THROW(evaluate(parse("Time > 1", schema()), attrs),
               std::out_of_range);
}

TEST(QueryParse, InListDesugarsToDisjunction) {
  Expr e = parse("id IN ('U1', 'U2', 'U3')", schema());
  ASSERT_EQ(e.kind, Expr::Kind::Or);
  ASSERT_EQ(e.children.size(), 3u);
  EXPECT_EQ(e.children[1].pred.op, CmpOp::Eq);
  EXPECT_EQ(e.children[1].pred.rhs_const.as_text(), "U2");
  // Single-element IN collapses to a bare predicate.
  Expr single = parse("C1 IN (5)", schema());
  EXPECT_EQ(single.kind, Expr::Kind::Pred);
}

TEST(QueryParse, BetweenDesugarsToRange) {
  Expr e = parse("C1 BETWEEN 10 AND 20", schema());
  ASSERT_EQ(e.kind, Expr::Kind::And);
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_EQ(e.children[0].pred.op, CmpOp::Ge);
  EXPECT_EQ(e.children[0].pred.rhs_const.as_int(), 10);
  EXPECT_EQ(e.children[1].pred.op, CmpOp::Le);
  EXPECT_EQ(e.children[1].pred.rhs_const.as_int(), 20);
}

TEST(QueryParse, SugarComposesWithConnectives) {
  auto records = logm::paper_table1_records();
  Expr e = parse("id IN ('U1', 'U3') AND C1 BETWEEN 20 AND 60", schema());
  std::vector<logm::Glsn> hits;
  for (const auto& rec : records) {
    if (evaluate(e, rec.attrs)) hits.push_back(rec.glsn);
  }
  // U1 rows with C1 in [20, 60]: ..78 (20), ..80 (45); U3 row ..82 (53).
  EXPECT_EQ(hits, (std::vector<logm::Glsn>{0x139aef78, 0x139aef80,
                                           0x139aef82}));
}

TEST(QueryParse, SugarErrors) {
  EXPECT_THROW(parse("id IN ()", schema()), ParseError);
  EXPECT_THROW(parse("id IN ('U1'", schema()), ParseError);
  EXPECT_THROW(parse("id IN (5)", schema()), ParseError);          // type
  EXPECT_THROW(parse("C1 BETWEEN 'a' AND 'b'", schema()), ParseError);
  EXPECT_THROW(parse("C1 BETWEEN 10 20", schema()), ParseError);   // no AND
  EXPECT_THROW(parse("id BETWEEN 'a' AND 'b'", schema()), ParseError);
}

TEST(QueryText, RoundTripThroughToText) {
  // to_text output must reparse to an equivalent expression.
  for (const char* q :
       {"Time > 1", "id = 'U1'", "C2 >= 23.45", "C1 < Time",
        "Time > 1 AND id = 'U1'", "(Time > 1 OR C1 < 5) AND id != 'U2'",
        "NOT (Time > 1 AND C1 < 5)"}) {
    Expr original = parse(q, schema());
    Expr reparsed = parse(to_text(original), schema());
    EXPECT_EQ(reparsed, original) << q;
  }
}

// Property: evaluate(push_negations(e)) == evaluate(e) over the workload.
class NormalizationEquivalence : public ::testing::TestWithParam<const char*> {
};

TEST_P(NormalizationEquivalence, PreservesSemantics) {
  crypto::ChaCha20Rng rng(11);
  logm::WorkloadSpec spec;
  spec.records = 60;
  auto records = logm::generate_workload(spec, rng);
  Expr original = parse(GetParam(), schema());
  Expr normalized = push_negations(original);
  for (const auto& rec : records) {
    EXPECT_EQ(evaluate(original, rec.attrs), evaluate(normalized, rec.attrs))
        << GetParam() << " on glsn " << rec.glsn;
  }
  // And the conjunctive form is still equivalent.
  auto conjuncts = to_conjunctive(normalized);
  for (const auto& rec : records) {
    bool all = true;
    for (const auto& c : conjuncts) all = all && evaluate(c, rec.attrs);
    EXPECT_EQ(all, evaluate(original, rec.attrs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Criteria, NormalizationEquivalence,
    ::testing::Values(
        "NOT (Time > 1021234100 AND C1 < 50)",
        "NOT (id = 'U1' OR NOT C2 > 500.0)",
        "NOT NOT (C1 >= 10 AND NOT protocl = 'TCP')",
        "Time > 1021234100 AND NOT (C1 < 50 OR C2 > 500.0)",
        "NOT (NOT id = 'U1' AND NOT id = 'U2')",
        "C1 < C1 OR NOT Tid != 'T1'"));

}  // namespace
}  // namespace dla::audit
