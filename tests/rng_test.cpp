// Tests for the deterministic ChaCha20 generator.
#include "crypto/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace dla::crypto {
namespace {

TEST(ChaCha20Rng, DeterministicForSeed) {
  ChaCha20Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ChaCha20Rng, DifferentSeedsDiverge) {
  ChaCha20Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ChaCha20Rng, StringSeedsIndependent) {
  ChaCha20Rng a("stream/one"), b("stream/two"), c("stream/one");
  EXPECT_NE(a.next_u64(), b.next_u64());
  ChaCha20Rng a2("stream/one");
  EXPECT_EQ(a2.next_u64(), c.next_u64());
}

TEST(ChaCha20Rng, NextBelowRespectsBound) {
  ChaCha20Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 50; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), std::domain_error);
}

TEST(ChaCha20Rng, NextBelowCoversRange) {
  ChaCha20Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit
}

TEST(ChaCha20Rng, DoubleInUnitInterval) {
  ChaCha20Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ChaCha20Rng, FillProducesSameStreamAsU64) {
  ChaCha20Rng a(12), b(12);
  std::vector<std::uint8_t> buf(16);
  a.fill(buf);
  std::uint64_t w0 = 0, w1 = 0;
  for (int i = 0; i < 8; ++i) w0 |= std::uint64_t(buf[i]) << (8 * i);
  for (int i = 0; i < 8; ++i) w1 |= std::uint64_t(buf[8 + i]) << (8 * i);
  EXPECT_EQ(w0, b.next_u64());
  EXPECT_EQ(w1, b.next_u64());
}

TEST(ChaCha20Rng, RoughUniformityChiSquared) {
  // 16 buckets, 16k draws: chi^2 with 15 dof; 99.9th percentile ~ 37.7.
  ChaCha20Rng rng(13);
  std::map<int, int> buckets;
  const int draws = 16384;
  for (int i = 0; i < draws; ++i) {
    buckets[static_cast<int>(rng.next_below(16))]++;
  }
  double expected = draws / 16.0;
  double chi2 = 0;
  for (int b = 0; b < 16; ++b) {
    double diff = buckets[b] - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace dla::crypto
