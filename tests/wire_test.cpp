// Tests for the audit wire payloads and robustness against malformed
// messages.
#include "audit/wire.hpp"

#include <gtest/gtest.h>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

namespace dla::audit {
namespace {

TEST(Wire, SetSpecRoundTrip) {
  SetSpec spec;
  spec.session = 42;
  spec.op = SetOp::Union;
  spec.purpose = SetPurpose::AclEntries;
  spec.participants = {3, 1, 4};
  spec.collector = 1;
  spec.observers = {5, 9};
  net::Writer w;
  spec.encode(w);
  net::Reader r(w.bytes());
  SetSpec decoded = SetSpec::decode(r);
  EXPECT_EQ(decoded.session, 42u);
  EXPECT_EQ(decoded.op, SetOp::Union);
  EXPECT_EQ(decoded.purpose, SetPurpose::AclEntries);
  EXPECT_EQ(decoded.participants, spec.participants);
  EXPECT_EQ(decoded.collector, 1u);
  EXPECT_EQ(decoded.observers, spec.observers);
}

TEST(Wire, SumSpecRoundTrip) {
  SumSpec spec;
  spec.session = 7;
  spec.participants = {0, 1, 2};
  spec.threshold_k = 2;
  spec.collector = 0;
  spec.observers = {2};
  spec.weights = {bn::BigUInt(1), bn::BigUInt(5), bn::BigUInt(7)};
  net::Writer w;
  spec.encode(w);
  net::Reader r(w.bytes());
  SumSpec decoded = SumSpec::decode(r);
  EXPECT_EQ(decoded.threshold_k, 2u);
  EXPECT_EQ(decoded.weights.size(), 3u);
  EXPECT_EQ(decoded.weights[1], bn::BigUInt(5));
}

TEST(Wire, CmpSpecTransformVisibility) {
  CmpSpec spec;
  spec.session = 9;
  spec.op = CmpOpKind::Max;
  spec.participants = {0, 1};
  spec.ttp = 5;
  spec.observers = {0};
  spec.a = bn::BigUInt(17);
  spec.b = bn::BigUInt(23);

  // Participant copy carries the transform...
  net::Writer with;
  spec.encode(with, true);
  net::Reader r1(with.bytes());
  CmpSpec p = CmpSpec::decode(r1, true);
  EXPECT_EQ(p.a, bn::BigUInt(17));

  // ...the TTP copy does not (and the decoder enforces the expectation).
  net::Writer without;
  spec.encode(without, false);
  net::Reader r2(without.bytes());
  CmpSpec t = CmpSpec::decode(r2, false);
  EXPECT_TRUE(t.a.is_zero());
  net::Reader r3(without.bytes());
  EXPECT_THROW(CmpSpec::decode(r3, true), net::CodecError);
}

TEST(Wire, GlsnElementRoundTrip) {
  for (logm::Glsn g : {logm::Glsn{0}, logm::Glsn{1}, logm::Glsn{0x139aef78},
                       logm::Glsn{UINT32_MAX}}) {
    bn::BigUInt e = encode_glsn_element(g, "");
    EXPECT_EQ(decode_glsn_element(e), g);
  }
}

TEST(Wire, GlsnElementBindsValue) {
  // Same glsn, different attribute value -> different element (so the
  // equality join matches only when both glsn AND value agree).
  bn::BigUInt a = encode_glsn_element(7, "t:U1");
  bn::BigUInt b = encode_glsn_element(7, "t:U2");
  bn::BigUInt c = encode_glsn_element(8, "t:U1");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(decode_glsn_element(a), 7u);
  EXPECT_EQ(decode_glsn_element(b), 7u);
  // And fits the 256-bit Pohlig-Hellman domain.
  EXPECT_LT(a.bit_length(), 256u);
}

TEST(Wire, EnumRenderings) {
  EXPECT_EQ(to_string(AggOp::Count), "COUNT");
  EXPECT_EQ(to_string(AggOp::Sum), "SUM");
  EXPECT_EQ(to_string(AggOp::Max), "MAX");
  EXPECT_EQ(to_string(AggOp::Min), "MIN");
  EXPECT_EQ(to_string(AggOp::Avg), "AVG");
  EXPECT_EQ(logm::to_string(logm::Op::Read), "R");
  EXPECT_EQ(logm::to_string(logm::Op::Write), "W");
  EXPECT_EQ(logm::to_string(logm::Op::Delete), "D");
  EXPECT_EQ(logm::to_string(logm::ValueType::Int), "int");
  EXPECT_EQ(logm::to_string(logm::ValueType::Real), "real");
  EXPECT_EQ(logm::to_string(logm::ValueType::Text), "text");
  EXPECT_EQ(to_string(CmpOp::Le), "<=");
  EXPECT_EQ(negate(CmpOp::Le), CmpOp::Gt);
}

TEST(Wire, ReportMessageBindsRequestAndGlsns) {
  std::string a = report_message(1, {10, 20});
  EXPECT_EQ(a, report_message(1, {10, 20}));
  EXPECT_NE(a, report_message(2, {10, 20}));   // different request
  EXPECT_NE(a, report_message(1, {10, 21}));   // different set
  EXPECT_NE(a, report_message(1, {10}));       // different cardinality
}

TEST(Wire, MalformedPayloadsDoNotCrashNodes) {
  Cluster cluster(Cluster::Options{logm::paper_schema(), 3, 1,
                                   std::nullopt, 1, true});
  // Garbage at every protocol message type, plus an unknown type.
  std::vector<std::uint32_t> types = {
      kGlsnRequest, kGlsnForward, kGlsnPropose,   kGlsnVote,
      kGlsnCommit,  kGlsnReply,   kLogFragment,   kAccumDeposit,
      kFragmentRequest, kFragmentDelete, kSetStart, kSetRing,
      kSetFull,     kSetDecrypt,  kSetResult,     kSumStart,
      kSumShare,    kSumEval,     kSumResult,     kCmpParams,
      kCmpResult,   kRankResult,  kIntegrityPass, kAuditQuery,
      kSubqueryExec, kJoinExec,   kCombineExec,   kCombineReady,
      kSubqueryDone, kCmpBatchResult, kSubqueryFetch, kSubqueryData,
      0xdeadbeef};
  net::NodeId target = cluster.config()->dla_nodes[0];
  net::NodeId user_id = cluster.user(0).id();
  for (std::uint32_t type : types) {
    cluster.sim().send(cluster.config()->dla_nodes[1], target, type,
                       {0x01, 0x02, 0x03});
    cluster.sim().send(target, user_id, type, {0xFF});
  }
  EXPECT_NO_THROW(cluster.run());
  // The cluster still works afterwards.
  std::optional<logm::Glsn> assigned;
  cluster.user(0).log_record(cluster.sim(),
                             logm::paper_table1_records()[0].attrs,
                             [&](std::optional<logm::Glsn> g) { assigned = g; });
  cluster.run();
  ASSERT_TRUE(assigned.has_value());
}

}  // namespace
}  // namespace dla::audit
