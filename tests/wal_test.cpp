// Tests for the durable WAL-backed fragment store: replay, crash recovery
// semantics (torn/corrupt tails), erase frames, and compaction.
#include "logm/wal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace dla::logm {
namespace {

namespace fs = std::filesystem;

struct WalFixture : ::testing::Test {
  WalFixture() {
    dir = fs::temp_directory_path() /
          ("dla_wal_test_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir);
    path = (dir / "fragments.wal").string();
  }
  ~WalFixture() override {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  Fragment frag(Glsn glsn, std::int64_t time) {
    Fragment f;
    f.glsn = glsn;
    f.attrs = {{"Time", Value(time)}, {"id", Value("U1")}};
    return f;
  }

  fs::path dir;
  std::string path;
};

TEST_F(WalFixture, FreshStoreIsEmpty) {
  WalFragmentStore wal(path);
  EXPECT_EQ(wal.store().size(), 0u);
  EXPECT_EQ(wal.replayed_frames(), 0u);
}

TEST_F(WalFixture, PutSurvivesReopen) {
  {
    WalFragmentStore wal(path);
    wal.put(frag(1, 100));
    wal.put(frag(2, 200));
  }
  WalFragmentStore reopened(path);
  EXPECT_EQ(reopened.store().size(), 2u);
  EXPECT_EQ(reopened.replayed_frames(), 2u);
  ASSERT_NE(reopened.store().get(2), nullptr);
  EXPECT_EQ(reopened.store().get(2)->attrs.at("Time").as_int(), 200);
}

TEST_F(WalFixture, EraseSurvivesReopen) {
  {
    WalFragmentStore wal(path);
    wal.put(frag(1, 100));
    wal.put(frag(2, 200));
    EXPECT_TRUE(wal.erase(1));
    EXPECT_FALSE(wal.erase(99));  // unknown glsn: no frame written
  }
  WalFragmentStore reopened(path);
  EXPECT_EQ(reopened.store().size(), 1u);
  EXPECT_EQ(reopened.store().get(1), nullptr);
  EXPECT_NE(reopened.store().get(2), nullptr);
}

TEST_F(WalFixture, OverwriteKeepsLatestValue) {
  {
    WalFragmentStore wal(path);
    wal.put(frag(1, 100));
    wal.put(frag(1, 999));
  }
  WalFragmentStore reopened(path);
  EXPECT_EQ(reopened.store().size(), 1u);
  EXPECT_EQ(reopened.store().get(1)->attrs.at("Time").as_int(), 999);
}

TEST_F(WalFixture, TornTailIsDroppedCleanly) {
  {
    WalFragmentStore wal(path);
    wal.put(frag(1, 100));
    wal.put(frag(2, 200));
  }
  // Simulate a crash mid-append: truncate the last 5 bytes.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);
  WalFragmentStore recovered(path);
  EXPECT_EQ(recovered.store().size(), 1u);
  EXPECT_NE(recovered.store().get(1), nullptr);
  EXPECT_EQ(recovered.store().get(2), nullptr);
  EXPECT_EQ(recovered.corrupt_frames_skipped(), 1u);
}

TEST_F(WalFixture, BitFlipInvalidatesFrameAndTail) {
  {
    WalFragmentStore wal(path);
    wal.put(frag(1, 100));
    wal.put(frag(2, 200));
    wal.put(frag(3, 300));
  }
  // Flip one byte inside the SECOND frame's payload.
  auto size = fs::file_size(path);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(size / 2));
  char byte;
  f.seekg(static_cast<std::streamoff>(size / 2));
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xFF);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&byte, 1);
  f.close();
  WalFragmentStore recovered(path);
  // Recovery keeps the prefix before the corruption and drops the rest.
  EXPECT_LT(recovered.store().size(), 3u);
  EXPECT_GE(recovered.corrupt_frames_skipped(), 1u);
}

TEST_F(WalFixture, CompactShrinksAndPreservesState) {
  std::size_t reclaimed;
  {
    WalFragmentStore wal(path);
    for (Glsn g = 1; g <= 20; ++g) wal.put(frag(g, static_cast<std::int64_t>(g)));
    for (Glsn g = 1; g <= 15; ++g) wal.erase(g);
    reclaimed = wal.compact();
  }
  EXPECT_GT(reclaimed, 0u);
  WalFragmentStore reopened(path);
  EXPECT_EQ(reopened.store().size(), 5u);
  for (Glsn g = 16; g <= 20; ++g) {
    EXPECT_NE(reopened.store().get(g), nullptr) << g;
  }
  EXPECT_EQ(reopened.corrupt_frames_skipped(), 0u);
}

TEST_F(WalFixture, CompactedLogReplaysFasterFrames) {
  {
    WalFragmentStore wal(path);
    for (Glsn g = 1; g <= 10; ++g) wal.put(frag(g, 1));
    for (Glsn g = 1; g <= 10; ++g) wal.put(frag(g, 2));  // overwrites
    wal.compact();
  }
  WalFragmentStore reopened(path);
  EXPECT_EQ(reopened.replayed_frames(), 10u);  // one frame per live fragment
  EXPECT_EQ(reopened.store().get(7)->attrs.at("Time").as_int(), 2);
}

TEST_F(WalFixture, AppendSyncsEveryAcknowledgedFrame) {
  WalFragmentStore wal(path);
  EXPECT_EQ(wal.sync_calls(), 0u);
  wal.put(frag(1, 100));
  wal.put(frag(2, 200));
  wal.erase(1);
  // One fsync per acknowledged frame (2 puts + 1 erase): flush() alone
  // leaves frames in the page cache, where a power cut can tear them.
  EXPECT_EQ(wal.sync_calls(), 3u);
}

TEST_F(WalFixture, CompactSyncsTmpAndParentDirectory) {
  WalFragmentStore wal(path);
  for (Glsn g = 1; g <= 5; ++g) wal.put(frag(g, static_cast<std::int64_t>(g)));
  const std::size_t before = wal.sync_calls();
  EXPECT_EQ(wal.dir_sync_calls(), 0u);
  wal.compact();
  // compact must sync the fully-written tmp log before the rename and the
  // parent directory after it; both were previously skipped entirely.
  EXPECT_EQ(wal.sync_calls(), before + 1);
  EXPECT_EQ(wal.dir_sync_calls(), 1u);
}

TEST_F(WalFixture, CrashBeforeCompactRenameRecoversPreCompactState) {
  struct CompactCrash {};
  {
    WalFragmentStore wal(path);
    for (Glsn g = 1; g <= 20; ++g)
      wal.put(frag(g, static_cast<std::int64_t>(g)));
    for (Glsn g = 1; g <= 15; ++g) wal.erase(g);
    // Simulate the process dying after the tmp log is written+synced but
    // before the rename publishes it: the live log must be untouched.
    wal.set_compact_crash_hook([] { throw CompactCrash{}; });
    EXPECT_THROW(wal.compact(), CompactCrash);
  }
  WalFragmentStore reopened(path);
  EXPECT_EQ(reopened.store().size(), 5u);
  EXPECT_EQ(reopened.corrupt_frames_skipped(), 0u);
  for (Glsn g = 16; g <= 20; ++g) {
    ASSERT_NE(reopened.store().get(g), nullptr) << g;
    EXPECT_EQ(reopened.store().get(g)->attrs.at("Time").as_int(),
              static_cast<std::int64_t>(g));
  }
  // The interrupted tmp log is still on disk; a rerun of compact() from the
  // recovered store must succeed and leave the same live set.
  std::size_t reclaimed = reopened.compact();
  EXPECT_GT(reclaimed, 0u);
  WalFragmentStore after(path);
  EXPECT_EQ(after.store().size(), 5u);
  EXPECT_EQ(after.replayed_frames(), 5u);
}

TEST(WalCrc, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace dla::logm
