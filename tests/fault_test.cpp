// Fault-injection tests: crash, partition, message loss, delete path, and
// the periodic self-audit, exercising the system's behaviour under the
// failures the simulator can inject.
#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

namespace dla::audit {
namespace {

struct FaultFixture : ::testing::Test {
  FaultFixture()
      : cluster(Cluster::Options{logm::paper_schema(), 4, 1,
                                 logm::paper_partition(), /*seed=*/13,
                                 /*auditor_users=*/true}) {}

  void log_rows(std::size_t count) {
    auto records = logm::paper_table1_records();
    for (std::size_t i = 0; i < count; ++i) {
      cluster.user(0).log_record(cluster.sim(),
                                 records[i % records.size()].attrs,
                                 [&](std::optional<logm::Glsn> g) {
                                   if (g) glsns.push_back(*g);
                                 });
      cluster.run();
    }
  }

  Cluster cluster;
  std::vector<logm::Glsn> glsns;
};

TEST_F(FaultFixture, LeaderCrashFailsOverForGlsnAssignment) {
  log_rows(1);
  // Crash the leader P0; use a gateway that is NOT P0 so the request can
  // take the timeout-retry path (user 0's round-robin is at index 1 now).
  cluster.sim().crash(cluster.config()->dla_nodes[0]);
  std::optional<std::optional<logm::Glsn>> result;
  cluster.user(0).log_record(cluster.sim(),
                             logm::paper_table1_records()[1].attrs,
                             [&](std::optional<logm::Glsn> g) { result = g; });
  cluster.run();
  // The glsn is assigned by the failover leader; the log itself cannot
  // complete (P0 can't ack its fragment), so the callback must NOT report
  // success with a dead member — it simply never fires.
  EXPECT_FALSE(result.has_value());
  // But the sequencer kept working: a query against the remaining state
  // still answers (gateway P2, all-local subquery on P1).
  std::optional<QueryOutcome> outcome;
  cluster.user(0).query(cluster.sim(), "id = 'U1' AND C2 < 100.0",
                        [&](QueryOutcome o) { outcome = std::move(o); });
  cluster.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok);
}

TEST_F(FaultFixture, RecoveredLeaderResumesService) {
  log_rows(1);
  cluster.sim().crash(cluster.config()->dla_nodes[0]);
  cluster.run();
  cluster.sim().recover(cluster.config()->dla_nodes[0]);
  std::optional<std::optional<logm::Glsn>> result;
  cluster.user(0).log_record(cluster.sim(),
                             logm::paper_table1_records()[1].attrs,
                             [&](std::optional<logm::Glsn> g) { result = g; });
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->has_value());
}

TEST_F(FaultFixture, PartitionFailsQueryWithTimeoutNotWrongAnswer) {
  log_rows(3);
  // Split {P0, P1} from {P2, P3, TTP, user}: cross subqueries cannot
  // complete; the gateway's watchdog fails the query back to the user
  // instead of answering wrong or hanging forever.
  cluster.sim().partition({cluster.config()->dla_nodes[0],
                           cluster.config()->dla_nodes[1]});
  std::optional<QueryOutcome> outcome;
  cluster.user(0).query(cluster.sim(), "id = 'U1' AND protocl = 'UDP'",
                        [&](QueryOutcome o) { outcome = std::move(o); });
  cluster.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->error, "query timed out");
  outcome.reset();

  // Heal and retry: the system answers again.
  cluster.sim().heal_partition();
  cluster.user(0).query(cluster.sim(), "id = 'U1' AND protocl = 'UDP'",
                        [&](QueryOutcome o) { outcome = std::move(o); });
  cluster.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok);
  EXPECT_EQ(outcome->glsns.size(), 2u);
}

TEST_F(FaultFixture, CrashedRingMemberStallsIntegrityCheckSafely) {
  log_rows(2);
  cluster.sim().crash(cluster.config()->dla_nodes[2]);
  bool fired = false;
  cluster.dla(0).on_integrity_result = [&](SessionId, logm::Glsn, bool) {
    fired = true;
  };
  cluster.dla(0).start_integrity_check(cluster.sim(), 1, glsns[0]);
  cluster.run();
  EXPECT_FALSE(fired);  // circulation cannot complete -> no verdict, no lie
}

TEST_F(FaultFixture, DroppedMessagesAreAccounted) {
  // Drop all accumulator deposits: logging completes (acks still flow) but
  // later integrity checks fail closed because the deposit is missing.
  cluster.sim().set_drop_policy(
      [](const net::Message& m) { return m.type == kAccumDeposit; });
  log_rows(1);
  ASSERT_EQ(glsns.size(), 1u);
  cluster.sim().set_drop_policy(nullptr);
  std::optional<bool> ok;
  cluster.dla(0).on_integrity_result = [&](SessionId, logm::Glsn, bool r) {
    ok = r;
  };
  cluster.dla(0).start_integrity_check(cluster.sim(), 1, glsns[0]);
  cluster.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);  // no deposit -> cannot attest integrity
  EXPECT_GT(cluster.sim().stats().messages_dropped, 0u);
}

TEST_F(FaultFixture, DeleteRemovesRecordEverywhere) {
  log_rows(2);
  // The default cluster ticket lacks Delete; issue one that has it and is
  // recorded in the ACL via a fresh log.
  Ticket del_ticket = cluster.issue_ticket(
      "TD", "u0", {logm::Op::Read, logm::Op::Write, logm::Op::Delete});
  cluster.user(0).configure(cluster.config(), del_ticket);
  std::optional<logm::Glsn> mine;
  cluster.user(0).log_record(cluster.sim(),
                             logm::paper_table1_records()[2].attrs,
                             [&](std::optional<logm::Glsn> g) { mine = g; });
  cluster.run();
  ASSERT_TRUE(mine.has_value());

  std::optional<bool> deleted;
  cluster.user(0).delete_record(cluster.sim(), *mine,
                                [&](bool ok) { deleted = ok; });
  cluster.run();
  ASSERT_TRUE(deleted.has_value());
  EXPECT_TRUE(*deleted);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.dla(i).store().get(*mine), nullptr) << "node " << i;
  }
}

TEST_F(FaultFixture, DeleteRefusedWithoutDeleteOpOrOwnership) {
  log_rows(1);
  // Default ticket has Read/Write only.
  std::optional<bool> deleted;
  cluster.user(0).delete_record(cluster.sim(), glsns[0],
                                [&](bool ok) { deleted = ok; });
  cluster.run();
  ASSERT_TRUE(deleted.has_value());
  EXPECT_FALSE(*deleted);
  EXPECT_NE(cluster.dla(0).store().get(glsns[0]), nullptr);

  // A Delete-capable ticket that does NOT own the glsn is refused too.
  Ticket foreign = cluster.issue_ticket(
      "TF", "mallory", {logm::Op::Read, logm::Op::Write, logm::Op::Delete});
  cluster.user(0).configure(cluster.config(), foreign);
  deleted.reset();
  cluster.user(0).delete_record(cluster.sim(), glsns[0],
                                [&](bool ok) { deleted = ok; });
  cluster.run();
  ASSERT_TRUE(deleted.has_value());
  EXPECT_FALSE(*deleted);
}

TEST_F(FaultFixture, PeriodicAuditDetectsLaterTampering) {
  log_rows(3);
  std::map<logm::Glsn, bool> verdicts;
  cluster.dla(1).on_integrity_result = [&](SessionId, logm::Glsn g, bool ok) {
    verdicts[g] = ok;
  };
  cluster.dla(1).enable_periodic_audit(cluster.sim(), 10000);
  // Let several audit rounds pass over intact logs.
  cluster.sim().run(cluster.sim().now() + 50000);
  EXPECT_FALSE(verdicts.empty());
  for (const auto& [g, ok] : verdicts) EXPECT_TRUE(ok) << std::hex << g;

  // Tamper, then let the rotation come around again.
  logm::Fragment bad = *cluster.dla(3).store().get(glsns[1]);
  bad.attrs["C1"] = logm::Value(std::int64_t{31337});
  cluster.dla(3).store().put(bad);
  verdicts.clear();
  cluster.sim().run(cluster.sim().now() + 60000);
  cluster.dla(1).disable_periodic_audit();
  cluster.run();
  ASSERT_TRUE(verdicts.contains(glsns[1]));
  EXPECT_FALSE(verdicts[glsns[1]]);
  // Untouched records keep passing.
  if (verdicts.contains(glsns[0])) {
    EXPECT_TRUE(verdicts[glsns[0]]);
  }
}

TEST_F(FaultFixture, ByzantineAclEditCaughtByConsistencyAudit) {
  log_rows(2);
  cluster.dla(3).acl().authorize("T1", 0xbad);
  std::optional<bool> consistent;
  cluster.dla(1).on_acl_check = [&](SessionId, bool c) { consistent = c; };
  cluster.dla(1).start_acl_consistency_check(cluster.sim(), 99);
  cluster.run();
  ASSERT_TRUE(consistent.has_value());
  EXPECT_FALSE(*consistent);
}

}  // namespace
}  // namespace dla::audit
