// End-to-end confidential audit queries over the full cluster (Figure 3):
// logging through user nodes, query normalization at the gateway, local and
// cross subqueries, blind-TTP joins, secure-set conjunction, ACL filtering.
#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

namespace dla::audit {
namespace {

struct E2eFixture : ::testing::Test {
  E2eFixture()
      : cluster(Cluster::Options{logm::paper_schema(), 4, 2,
                                 logm::paper_partition(), /*seed=*/7,
                                 /*auditor_users=*/true}) {
    for (const auto& rec : logm::paper_table1_records()) {
      cluster.user(0).log_record(
          cluster.sim(), rec.attrs,
          [&](std::optional<logm::Glsn> glsn) {
            ASSERT_TRUE(glsn.has_value());
            glsns.push_back(*glsn);
          });
    }
    cluster.run();
    EXPECT_EQ(glsns.size(), 5u);
  }

  // The paper's Table 1 rows were re-assigned fresh glsns by the sequencer;
  // map row index -> actual glsn.
  logm::Glsn row(std::size_t i) const { return glsns.at(i); }

  QueryOutcome run_query(const std::string& criterion, std::size_t user = 0) {
    std::optional<QueryOutcome> outcome;
    cluster.user(user).query(cluster.sim(), criterion,
                             [&](QueryOutcome o) { outcome = std::move(o); });
    cluster.run();
    EXPECT_TRUE(outcome.has_value()) << criterion;
    return outcome.value_or(QueryOutcome{});
  }

  Cluster cluster;
  std::vector<logm::Glsn> glsns;
};

TEST_F(E2eFixture, LoggingAssignsDistinctMonotonicGlsns) {
  // Majority agreement guarantees uniqueness and monotonicity; strict
  // sequentiality is not promised under concurrent proposals (contended
  // rounds may skip values).
  std::set<logm::Glsn> unique(glsns.begin(), glsns.end());
  EXPECT_EQ(unique.size(), glsns.size());
  for (logm::Glsn g : glsns) EXPECT_GT(g, 0x139aef77u);
}

TEST_F(E2eFixture, LoggingFragmentsByPartition) {
  // P0 stores only Time; P1 id+C2; P2 Tid+C3; P3 protocl+C1 (Tables 2-5).
  for (logm::Glsn g : glsns) {
    const logm::Fragment* f0 = cluster.dla(0).store().get(g);
    ASSERT_NE(f0, nullptr);
    EXPECT_EQ(f0->attrs.size(), 1u);
    EXPECT_TRUE(f0->attrs.contains("Time"));
    const logm::Fragment* f1 = cluster.dla(1).store().get(g);
    EXPECT_TRUE(f1->attrs.contains("id"));
    EXPECT_TRUE(f1->attrs.contains("C2"));
    const logm::Fragment* f2 = cluster.dla(2).store().get(g);
    EXPECT_TRUE(f2->attrs.contains("Tid"));
    const logm::Fragment* f3 = cluster.dla(3).store().get(g);
    EXPECT_TRUE(f3->attrs.contains("protocl"));
  }
}

TEST_F(E2eFixture, LocalSingleNodeQuery) {
  // id and C2 both live on P1 -> fully local subquery.
  auto outcome = run_query("id = 'U1' AND C2 > 100.0");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns, (std::vector<logm::Glsn>{row(2)}));  // U1, 235.00
}

TEST_F(E2eFixture, CrossNodeConjunction) {
  // id (P1) AND protocl (P3): two local subqueries conjoined by the secure
  // set intersection.
  auto outcome = run_query("id = 'U1' AND protocl = 'UDP'");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns, (std::vector<logm::Glsn>{row(0), row(2)}));
}

TEST_F(E2eFixture, CrossNodeDisjunction) {
  // One cross subquery with OR across P1 and P3 -> secure set union inside
  // the subquery evaluation.
  auto outcome = run_query("id = 'U3' OR protocl = 'TCP'");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns, (std::vector<logm::Glsn>{row(3), row(4)}));
}

TEST_F(E2eFixture, ThreeWayConjunction) {
  auto outcome =
      run_query("id = 'U1' AND protocl = 'UDP' AND Tid = 'T1100265'");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns, (std::vector<logm::Glsn>{row(0)}));
}

TEST_F(E2eFixture, NotNormalizationEndToEnd) {
  auto outcome = run_query("NOT (protocl = 'UDP' OR C1 >= 50)");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  // TCP and C1 < 50: row 3 (TCP, 18). Row 4 is TCP but C1 = 53.
  EXPECT_EQ(outcome.glsns, (std::vector<logm::Glsn>{row(3)}));
}

TEST_F(E2eFixture, NumericCrossAttributeJoin) {
  // C1 (P3) < C2 (P1): per-glsn blind-TTP comparison batch.
  // Rows where C1 < C2: 20<23.45 T, 34<345.11 T, 45<235 T, 18<45.02 T,
  // 53<678.75 T -> all five.
  auto outcome = run_query("C1 < C2");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns.size(), 5u);
}

TEST_F(E2eFixture, NumericCrossAttributeJoinSelective) {
  // C2 (P1) < C1 (P3) holds for no row of Table 1.
  auto outcome = run_query("C2 < C1");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.glsns.empty());
}

TEST_F(E2eFixture, TextCrossAttributeEquality) {
  // id (P1) = C3 (P2): never equal in Table 1 -> empty.
  auto outcome = run_query("id = C3");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.glsns.empty());
}

TEST_F(E2eFixture, JoinCombinedWithLocalPredicate) {
  // (C1 < C2) is a TTP join; Tid = 'T1100267' is local to P2.
  auto outcome = run_query("C1 < C2 AND Tid = 'T1100267'");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.glsns, (std::vector<logm::Glsn>{row(2), row(4)}));
}

TEST_F(E2eFixture, EmptyResultQuery) {
  auto outcome = run_query("id = 'U9'");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.glsns.empty());
}

TEST_F(E2eFixture, ParseErrorSurfacesToUser) {
  auto outcome = run_query("id = ");
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("parse error"), std::string::npos);
}

TEST_F(E2eFixture, UnknownAttributeSurfacesToUser) {
  auto outcome = run_query("salary > 100");
  EXPECT_FALSE(outcome.ok);
}

TEST_F(E2eFixture, ResultsMatchCentralEvaluationOnWorkload) {
  // Property check: every query the distributed pipeline answers must match
  // a direct evaluation over the full records.
  auto records = logm::paper_table1_records();
  const char* queries[] = {
      "Time > 202000",
      "C2 >= 45.02 AND protocl = 'UDP'",
      "(id = 'U1' OR id = 'U2') AND C1 < 40",
      "NOT Tid = 'T1100265'",
      "C1 < C2 OR id = 'U3'",
      "Time >= 202335 AND Time <= 202338",
  };
  for (const char* q : queries) {
    auto outcome = run_query(q);
    ASSERT_TRUE(outcome.ok) << q << ": " << outcome.error;
    std::vector<logm::Glsn> expected;
    Expr e = parse(q, cluster.config()->schema);
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (evaluate(e, records[i].attrs)) expected.push_back(row(i));
    }
    EXPECT_EQ(outcome.glsns, expected) << q;
  }
}

TEST_F(E2eFixture, FragmentFetchWithAcl) {
  std::optional<logm::Fragment> fetched;
  cluster.user(0).fetch_fragment(cluster.sim(), 1, row(0),
                                 [&](std::optional<logm::Fragment> f) {
                                   fetched = std::move(f);
                                 });
  cluster.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->attrs.at("id").as_text(), "U1");
}

TEST_F(E2eFixture, FetchRecordReassemblesFullRow) {
  std::optional<logm::LogRecord> record;
  cluster.user(0).fetch_record(cluster.sim(), row(1),
                               [&](std::optional<logm::LogRecord> r) {
                                 record = std::move(r);
                               });
  cluster.run();
  ASSERT_TRUE(record.has_value());
  logm::LogRecord expected = logm::paper_table1_records()[1];
  expected.glsn = row(1);
  EXPECT_EQ(*record, expected);
}

TEST_F(E2eFixture, FetchRecordFailsClosedOnUnknownGlsn) {
  std::optional<std::optional<logm::LogRecord>> outcome;
  cluster.user(0).fetch_record(cluster.sim(), 0xdead,
                               [&](std::optional<logm::LogRecord> r) {
                                 outcome = std::move(r);
                               });
  cluster.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->has_value());
}

TEST_F(E2eFixture, FragmentFetchDeniedForForeignTicket) {
  // user(1) never logged anything; with a non-auditor ticket it may not
  // read user(0)'s fragments.
  Ticket restricted = cluster.issue_ticket("T9", "u1", {logm::Op::Read});
  cluster.user(1).configure(cluster.config(), restricted);
  std::optional<logm::Fragment> fetched;
  bool called = false;
  cluster.user(1).fetch_fragment(cluster.sim(), 1, row(0),
                                 [&](std::optional<logm::Fragment> f) {
                                   called = true;
                                   fetched = std::move(f);
                                 });
  cluster.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(fetched.has_value());
}

TEST_F(E2eFixture, QueryResultsFilteredByAclForUserTickets) {
  // A user-scope ticket that owns nothing sees an empty result even though
  // the criterion matches records.
  Ticket restricted = cluster.issue_ticket("T9", "u1", {logm::Op::Read});
  cluster.user(1).configure(cluster.config(), restricted);
  auto outcome = run_query("protocl = 'UDP'", 1);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.glsns.empty());
}

TEST_F(E2eFixture, WriteRefusedWithoutWriteTicket) {
  Ticket read_only = cluster.issue_ticket("T8", "u1", {logm::Op::Read});
  cluster.user(1).configure(cluster.config(), read_only);
  std::optional<std::optional<logm::Glsn>> result;
  cluster.user(1).log_record(cluster.sim(),
                             logm::paper_table1_records()[0].attrs,
                             [&](std::optional<logm::Glsn> glsn) {
                               result = glsn;
                             });
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
}

TEST_F(E2eFixture, QueryRefusedWithoutReadTicket) {
  Ticket write_only = cluster.issue_ticket("T7", "u1", {logm::Op::Write});
  cluster.user(1).configure(cluster.config(), write_only);
  auto outcome = run_query("protocl = 'UDP'", 1);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error, "ticket rejected");
}

TEST_F(E2eFixture, ConcurrentLoggingFromMultipleUsersAllCompletes) {
  // Regression: gateway-side request correlation must not collide when
  // different users reuse the same per-user request ids concurrently.
  Ticket second = cluster.issue_ticket("T2", "u1",
                                       {logm::Op::Read, logm::Op::Write},
                                       /*auditor=*/true);
  cluster.user(1).configure(cluster.config(), second);
  std::vector<logm::Glsn> assigned;
  auto records = logm::paper_table1_records();
  for (int round = 0; round < 4; ++round) {
    for (std::size_t u = 0; u < 2; ++u) {
      cluster.user(u).log_record(cluster.sim(), records[round].attrs,
                                 [&](std::optional<logm::Glsn> g) {
                                   ASSERT_TRUE(g.has_value());
                                   assigned.push_back(*g);
                                 });
    }
  }
  cluster.run();
  ASSERT_EQ(assigned.size(), 8u);
  std::set<logm::Glsn> unique(assigned.begin(), assigned.end());
  EXPECT_EQ(unique.size(), 8u);  // all distinct
}

TEST_F(E2eFixture, InformationFlowStaysInsideTheCluster) {
  // The paper's query-processing rule: "only the final results ... would be
  // made available to nodes that are authorized to receive the results."
  // For a cross-node query, assert from the per-link traffic that (a) the
  // user hears back from the gateway exactly once and from nobody else,
  // and (b) the TTP receives no traffic at all when no join is involved.
  cluster.sim().reset_stats();
  std::optional<QueryOutcome> outcome;
  cluster.user(0).query(cluster.sim(), "id = 'U1' AND protocl = 'UDP'",
                        [&](QueryOutcome o) { outcome = std::move(o); });
  cluster.run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok);

  net::NodeId user_id = cluster.user(0).id();
  net::NodeId ttp_id = cluster.config()->ttp;
  std::uint64_t to_user = 0, user_senders = 0, to_ttp = 0;
  for (const auto& [link, stats] : cluster.sim().stats().per_link) {
    if (link.second == user_id) {
      to_user += stats.messages;
      ++user_senders;
    }
    if (link.second == ttp_id) to_ttp += stats.messages;
  }
  EXPECT_EQ(to_user, 1u);       // exactly the final result
  EXPECT_EQ(user_senders, 1u);  // from the gateway only
  EXPECT_EQ(to_ttp, 0u);        // no TTP involvement without a join
}

TEST_F(E2eFixture, ConcurrentQueriesFromMultipleUsersAllAnswer) {
  // Several queries in flight at once, via different gateways: per-qid
  // state on the gateways and rid-scoped sessions must not interfere.
  Ticket second = cluster.issue_ticket("TB", "u1", {logm::Op::Read},
                                       /*auditor=*/true);
  cluster.user(1).configure(cluster.config(), second);
  struct Expected {
    const char* criterion;
    std::vector<std::size_t> rows;
  };
  std::vector<Expected> cases = {
      {"id = 'U1' AND protocl = 'UDP'", {0, 2}},
      {"id = 'U3' OR protocl = 'TCP'", {3, 4}},
      {"Tid = 'T1100267'", {2, 4}},
      {"C1 < C2 AND Tid = 'T1100267'", {2, 4}},
      {"C2 > 300.0", {1, 4}},
      {"NOT protocl = 'UDP'", {3, 4}},
  };
  std::map<std::string, std::optional<QueryOutcome>> outcomes;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    cluster.user(i % 2).query(cluster.sim(), cases[i].criterion,
                              [&, i](QueryOutcome o) {
                                outcomes[cases[i].criterion] = std::move(o);
                              });
  }
  cluster.run();
  for (const auto& c : cases) {
    auto& outcome = outcomes[c.criterion];
    ASSERT_TRUE(outcome.has_value()) << c.criterion;
    ASSERT_TRUE(outcome->ok) << c.criterion << ": " << outcome->error;
    std::vector<logm::Glsn> expected;
    for (std::size_t r : c.rows) expected.push_back(row(r));
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(outcome->glsns, expected) << c.criterion;
  }
}

TEST_F(E2eFixture, GlsnSequencerSurvivesLeaderCrash) {
  // Crash P0 (the default leader); the gateway times out and retries with
  // the next node, so logging still completes.
  cluster.sim().crash(cluster.config()->dla_nodes[0]);
  std::optional<std::optional<logm::Glsn>> result;
  cluster.user(0).log_record(cluster.sim(),
                             logm::paper_table1_records()[0].attrs,
                             [&](std::optional<logm::Glsn> glsn) {
                               result = glsn;
                             });
  cluster.run();
  // The user picked a gateway round-robin; if the gateway itself was P0 the
  // request dies (user would retry in a real deployment). Accept either a
  // successful assignment or no callback, but require no wrong result.
  if (result.has_value() && result->has_value()) {
    EXPECT_GT(result->value(), glsns.back());
  }
}

}  // namespace
}  // namespace dla::audit
