// Tests for transaction-specification auditing (R_T of Eqs. 1-2).
#include "audit/transaction_audit.hpp"

#include <gtest/gtest.h>

#include "logm/workload.hpp"

namespace dla::audit {
namespace {

logm::Transaction make_txn(std::uint64_t tsn,
                           std::vector<std::tuple<const char*, std::int64_t,
                                                  double>> events) {
  logm::Transaction txn;
  txn.tsn = tsn;
  txn.ttn = 1;
  logm::Glsn glsn = 100;
  for (auto [who, time, amount] : events) {
    logm::LogRecord rec;
    rec.glsn = glsn++;
    rec.attrs = {{"Time", logm::Value(time)},
                 {"id", logm::Value(who)},
                 {"protocl", logm::Value("TCP")},
                 {"Tid", logm::Value("T1")},
                 {"C1", logm::Value(std::int64_t{1})},
                 {"C2", logm::Value(amount)},
                 {"C3", logm::Value("x")}};
    txn.events.push_back(logm::TransactionEvent{who, std::move(rec)});
  }
  return txn;
}

TEST(TransactionAudit, ConformingTransactionPassesAllRules) {
  TransactionAuditor auditor(
      logm::paper_schema(),
      {PerEventCriterion{"C2 >= 0.0"}, EventOrder{"Time", false},
       Completeness{3}, DistinctParties{2}, NoDuplicateEvents{}});
  auto txn = make_txn(1, {{"U1", 100, 10.0}, {"U2", 100, 20.0},
                          {"U1", 150, 5.0}});
  auto report = auditor.audit(txn);
  EXPECT_TRUE(report.conforms);
  ASSERT_EQ(report.verdicts.size(), 5u);
  for (const auto& v : report.verdicts) EXPECT_TRUE(v.satisfied) << v.detail;
}

TEST(TransactionAudit, PerEventCriterionViolation) {
  TransactionAuditor auditor(logm::paper_schema(),
                             {PerEventCriterion{"C2 >= 0.0"}});
  auto txn = make_txn(2, {{"U1", 100, 10.0}, {"U2", 110, -5.0}});
  auto report = auditor.audit(txn);
  EXPECT_FALSE(report.conforms);
  EXPECT_FALSE(report.verdicts[0].satisfied);
  EXPECT_NE(report.verdicts[0].detail.find("violates"), std::string::npos);
}

TEST(TransactionAudit, EventOrderViolation) {
  TransactionAuditor auditor(logm::paper_schema(), {EventOrder{"Time", false}});
  auto txn = make_txn(3, {{"U1", 200, 1.0}, {"U2", 100, 1.0}});
  EXPECT_FALSE(auditor.audit(txn).conforms);
}

TEST(TransactionAudit, StrictOrderRejectsTies) {
  TransactionAuditor lax(logm::paper_schema(), {EventOrder{"Time", false}});
  TransactionAuditor strict(logm::paper_schema(), {EventOrder{"Time", true}});
  auto txn = make_txn(4, {{"U1", 100, 1.0}, {"U2", 100, 1.0}});
  EXPECT_TRUE(lax.audit(txn).conforms);
  EXPECT_FALSE(strict.audit(txn).conforms);
}

TEST(TransactionAudit, CompletenessViolation) {
  TransactionAuditor auditor(logm::paper_schema(), {Completeness{3}});
  auto txn = make_txn(5, {{"U1", 100, 1.0}, {"U2", 110, 1.0}});
  auto report = auditor.audit(txn);
  EXPECT_FALSE(report.conforms);
  EXPECT_NE(report.verdicts[0].detail.find("expected 3"), std::string::npos);
}

TEST(TransactionAudit, DistinctPartiesViolation) {
  // Non-repudiation style rule: both sides of the transaction must appear.
  TransactionAuditor auditor(logm::paper_schema(), {DistinctParties{2}});
  auto solo = make_txn(6, {{"U1", 100, 1.0}, {"U1", 110, 1.0}});
  EXPECT_FALSE(auditor.audit(solo).conforms);
  auto dual = make_txn(7, {{"U1", 100, 1.0}, {"U2", 110, 1.0}});
  EXPECT_TRUE(auditor.audit(dual).conforms);
}

TEST(TransactionAudit, DuplicateGlsnDetected) {
  TransactionAuditor auditor(logm::paper_schema(), {NoDuplicateEvents{}});
  auto txn = make_txn(8, {{"U1", 100, 1.0}, {"U2", 110, 1.0}});
  txn.events[1].record.glsn = txn.events[0].record.glsn;  // replayed event
  EXPECT_FALSE(auditor.audit(txn).conforms);
}

TEST(TransactionAudit, MissingAttributeFailsClosed) {
  TransactionAuditor auditor(logm::paper_schema(),
                             {PerEventCriterion{"C2 > 0.0"}});
  auto txn = make_txn(9, {{"U1", 100, 1.0}});
  txn.events[0].record.attrs.erase("C2");
  EXPECT_FALSE(auditor.audit(txn).conforms);
}

TEST(TransactionAudit, FindViolationsFiltersConforming) {
  TransactionAuditor auditor(logm::paper_schema(),
                             {EventOrder{"Time", false}, DistinctParties{2}});
  std::vector<logm::Transaction> txns = {
      make_txn(1, {{"U1", 100, 1.0}, {"U2", 110, 1.0}}),   // ok
      make_txn(2, {{"U1", 200, 1.0}, {"U2", 100, 1.0}}),   // order violation
      make_txn(3, {{"U1", 100, 1.0}, {"U1", 120, 1.0}}),   // parties violation
  };
  auto violations = auditor.find_violations(txns);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].tsn, 2u);
  EXPECT_EQ(violations[1].tsn, 3u);
}

TEST(TransactionAudit, WorksOverGeneratedWorkload) {
  crypto::ChaCha20Rng rng(5);
  logm::WorkloadSpec spec;
  spec.records = 120;
  auto records = logm::generate_workload(spec, rng);
  auto txns = logm::group_into_transactions(records);
  // The generator emits time-ordered events and non-negative amounts, so
  // these rules must hold for every transaction.
  TransactionAuditor auditor(
      logm::paper_schema(),
      {PerEventCriterion{"C2 >= 0.0"}, EventOrder{"Time", false},
       NoDuplicateEvents{}});
  EXPECT_TRUE(auditor.find_violations(txns).empty());
}

}  // namespace
}  // namespace dla::audit
