// Differential and unit tests for the compiled local query engine
// (audit/local_query.hpp) and the FragmentStore columnar mirror.
//
// The engine carries a strict equivalence obligation: eval_local_indexed
// must return bit-identical glsn sets to the naive scan (select + evaluate,
// missing attribute => non-match) on every workload. The differential
// sweeps randomized generate_workload seeds over full, partitioned and
// attribute-sparse stores.
#include "audit/local_query.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "audit/metrics.hpp"
#include "audit/query.hpp"
#include "crypto/rng.hpp"
#include "logm/store.hpp"
#include "logm/workload.hpp"
#include "workload_gen.hpp"

namespace dla::audit {
namespace {

using logm::FragmentStore;
using logm::Glsn;
using logm::LogRecord;

// Criteria covering every planner shape: indexable equality/range
// conjunctions, IN-fans, non-indexable residuals (!=, attr-vs-attr, NOT,
// mixed-attribute OR) and empty-result short circuits.
const std::vector<std::string>& criteria() {
  static const std::vector<std::string> kCriteria{
      "id = 'U3'",
      "protocl = 'UDP'",
      "C2 > 500.0",
      "C2 >= 100.0 AND C2 <= 900.0",
      "Time > 1021234000 AND id = 'U1'",
      "id = 'U3' AND C2 > 500.0 AND protocl = 'TCP'",
      "id IN ('U1', 'U3', 'U5')",
      "C1 BETWEEN 2 AND 7",
      "id != 'U2'",
      "C1 < C2",
      "C1 < C2 AND Tid = 'T3'",
      "NOT (id = 'U1' OR C2 > 800.0)",
      "id = 'U1' OR protocl = 'TCP'",
      "id = 'NO_SUCH_USER' AND C2 > 0.0",
      "id = 'U1' AND id = 'U2'",
      "(id = 'U1' AND C2 > 200.0) OR Tid = 'T5'",
  };
  return kCriteria;
}

// Record/store builders are shared with the bench and traffic drivers
// (tests/workload_gen.hpp) so every consumer sees identical seeded streams.
std::vector<LogRecord> make_records(std::uint64_t seed, std::size_t count) {
  return testkit::make_records(seed, count);
}

FragmentStore full_store(const std::vector<LogRecord>& records) {
  return testkit::make_store(records);
}

// Drops attributes pseudo-randomly so the missing-attribute (tri-state)
// semantics is exercised: roughly one attribute in six goes absent.
FragmentStore sparse_store(const std::vector<LogRecord>& records,
                           std::uint64_t seed) {
  crypto::ChaCha20Rng rng(seed);
  FragmentStore store;
  for (const LogRecord& rec : records) {
    logm::Fragment frag{rec.glsn, {}};
    for (const auto& [name, value] : rec.attrs) {
      if (rng.next_u64() % 6 != 0) frag.attrs.emplace(name, value);
    }
    store.put(std::move(frag));
  }
  return store;
}

void expect_equivalent(const FragmentStore& store, const std::string& where) {
  const logm::Schema schema = logm::paper_schema();
  for (const std::string& text : criteria()) {
    const Expr expr = parse(text, schema);
    EXPECT_EQ(eval_local_indexed(expr, store), eval_local_scan(expr, store))
        << where << " diverged on: " << text;
  }
}

TEST(LocalQueryDifferential, FullRecordsAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    FragmentStore store = full_store(make_records(seed, 300));
    expect_equivalent(store, "full/seed " + std::to_string(seed));
  }
}

TEST(LocalQueryDifferential, PartitionedFragmentsAcrossSeeds) {
  const logm::AttributePartition partition = logm::paper_partition();
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    std::vector<FragmentStore> stores(partition.node_count());
    for (const LogRecord& rec : make_records(seed, 200)) {
      std::vector<logm::Fragment> frags = partition.fragment(rec);
      for (std::size_t node = 0; node < frags.size(); ++node) {
        stores[node].put(std::move(frags[node]));
      }
    }
    for (std::size_t n = 0; n < stores.size(); ++n) {
      expect_equivalent(stores[n], "partition/seed " + std::to_string(seed) +
                                       "/node " + std::to_string(n));
    }
  }
}

TEST(LocalQueryDifferential, SparseRecordsExerciseMissingSemantics) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    FragmentStore store = sparse_store(make_records(seed, 250), seed * 7);
    expect_equivalent(store, "sparse/seed " + std::to_string(seed));
  }
}

TEST(LocalQueryDifferential, SurvivesErasesAndOverwrites) {
  std::vector<LogRecord> records = make_records(31, 200);
  FragmentStore store = full_store(records);
  crypto::ChaCha20Rng rng(31 * 13);
  // Erase a third, overwrite a third with mutated attributes.
  for (const LogRecord& rec : records) {
    switch (rng.next_u64() % 3) {
      case 0:
        store.erase(rec.glsn);
        break;
      case 1: {
        logm::Fragment frag{rec.glsn, rec.attrs};
        frag.attrs["C2"] = logm::Value(static_cast<double>(rng.next_u64() % 1000));
        frag.attrs.erase("Tid");
        store.put(std::move(frag));
        break;
      }
      default:
        break;
    }
  }
  expect_equivalent(store, "mutated");
}

TEST(LocalQueryDifferential, IndexingDisabledDelegatesToScan) {
  FragmentStore store = full_store(make_records(41, 100));
  store.set_indexing(false);
  expect_equivalent(store, "indexing-off");
  store.set_indexing(true);  // rebuild, then differential again
  expect_equivalent(store, "indexing-rebuilt");
}

// Ordered text-vs-numeric comparison must throw from both paths (the parser
// forbids the shape, but hand-built expressions reach the engine directly).
TEST(LocalQuery, OrderedTypeMismatchThrowsLikeScan) {
  FragmentStore store = full_store(make_records(51, 20));
  Expr expr = Expr::make_pred(
      Predicate{"id", CmpOp::Lt, false, "", logm::Value(std::int64_t{5})});
  EXPECT_THROW(eval_local_indexed(expr, store), std::invalid_argument);
  EXPECT_THROW(eval_local_scan(expr, store), std::invalid_argument);
}

// ---- columnar mirror unit coverage ----------------------------------------

TEST(FragmentStoreColumnar, MirrorTracksPutEraseOverwrite) {
  FragmentStore store;
  store.put({10, {{"id", logm::Value("U1")}, {"C1", logm::Value(std::int64_t{5})}}});
  store.put({20, {{"id", logm::Value("U2")}}});
  store.put({15, {{"id", logm::Value("U1")}, {"C1", logm::Value(std::int64_t{9})}}});

  ASSERT_EQ(store.row_count(), 3u);
  EXPECT_EQ(store.row_glsns(), (std::vector<Glsn>{10, 15, 20}));
  ASSERT_NE(store.column("id"), nullptr);
  EXPECT_EQ(store.column("id")->present, 3u);
  ASSERT_NE(store.column("C1"), nullptr);
  EXPECT_EQ(store.column("C1")->present, 2u);
  EXPECT_EQ(store.column("C1")->cells[2], nullptr);  // glsn 20 lacks C1

  const logm::AttributeIndex* idx = store.attr_index("id");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->rows(), 3u);
  EXPECT_EQ(idx->distinct(), 2u);
  const std::vector<Glsn>* u1 = idx->equal(logm::Value("U1"));
  ASSERT_NE(u1, nullptr);
  EXPECT_EQ(*u1, (std::vector<Glsn>{10, 15}));

  // Overwrite drops the old postings and picks up the new value.
  store.put({15, {{"id", logm::Value("U3")}}});
  EXPECT_EQ(*store.attr_index("id")->equal(logm::Value("U1")),
            (std::vector<Glsn>{10}));
  EXPECT_EQ(store.column("C1")->present, 1u);

  store.erase(10);
  EXPECT_EQ(store.row_count(), 2u);
  EXPECT_EQ(store.attr_index("id")->equal(logm::Value("U1")), nullptr);
  EXPECT_EQ(store.row_of(15), std::optional<std::size_t>{0});
  EXPECT_EQ(store.row_of(10), std::nullopt);
}

TEST(FragmentStoreColumnar, CopyRebuildsMirror) {
  FragmentStore store = full_store(make_records(61, 50));
  FragmentStore copy = store;
  store.erase(store.row_glsns().front());  // must not disturb the copy
  ASSERT_EQ(copy.row_count(), 50u);
  expect_equivalent(copy, "copied store");
}

TEST(FragmentStoreColumnar, RangeIndexRespectsBounds) {
  FragmentStore store;
  for (std::int64_t i = 0; i < 10; ++i) {
    store.put({static_cast<Glsn>(100 + i), {{"C1", logm::Value(i)}}});
  }
  const logm::AttributeIndex* idx = store.attr_index("C1");
  ASSERT_NE(idx, nullptr);
  const logm::Value lo(std::int64_t{3});
  const logm::Value hi(std::int64_t{6});
  EXPECT_EQ(idx->range(&lo, true, &hi, true),
            (std::vector<Glsn>{103, 104, 105, 106}));
  EXPECT_EQ(idx->range(&lo, false, &hi, false), (std::vector<Glsn>{104, 105}));
  EXPECT_EQ(idx->range(nullptr, false, &lo, false),
            (std::vector<Glsn>{100, 101, 102}));
  EXPECT_EQ(idx->range(&hi, false, nullptr, false),
            (std::vector<Glsn>{107, 108, 109}));
  ASSERT_NE(idx->min_value(), nullptr);
  EXPECT_EQ(idx->min_value()->as_int(), 0);
  EXPECT_EQ(idx->max_value()->as_int(), 9);
}

}  // namespace
}  // namespace dla::audit
