// Tests for the Du-Atallah secure scalar product over the simulated
// cluster (commodity-server model with the blind TTP).
#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

namespace dla::audit {
namespace {

struct ScalarFixture : ::testing::Test {
  ScalarFixture()
      : cluster(Cluster::Options{logm::paper_schema(), 3, 0,
                                 std::nullopt, /*seed=*/41, false}) {}

  std::vector<bn::BigUInt> vec(std::initializer_list<std::uint64_t> values) {
    std::vector<bn::BigUInt> out;
    for (auto v : values) out.emplace_back(v);
    return out;
  }

  std::optional<bn::BigUInt> run_product(SessionId session,
                                         std::vector<bn::BigUInt> a,
                                         std::vector<bn::BigUInt> b) {
    std::size_t length = a.size();
    cluster.dla(0).stage_vector_input(session, std::move(a));
    cluster.dla(1).stage_vector_input(session, std::move(b));
    std::optional<bn::BigUInt> result;
    cluster.dla(0).on_scalar_result = [&](SessionId, bn::BigUInt v) {
      result = std::move(v);
    };
    cluster.dla(0).start_scalar_product(
        cluster.sim(), session, cluster.config()->dla_nodes[0],
        cluster.config()->dla_nodes[1], static_cast<std::uint32_t>(length),
        {cluster.config()->dla_nodes[0]});
    cluster.run();
    return result;
  }

  Cluster cluster;
};

TEST_F(ScalarFixture, KnownDotProduct) {
  auto result = run_product(1, vec({1, 2, 3}), vec({4, 5, 6}));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, bn::BigUInt(1 * 4 + 2 * 5 + 3 * 6));
}

TEST_F(ScalarFixture, ZeroVector) {
  auto result = run_product(2, vec({0, 0, 0}), vec({7, 8, 9}));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->is_zero());
}

TEST_F(ScalarFixture, SingleElement) {
  auto result = run_product(3, vec({123}), vec({456}));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, bn::BigUInt(123 * 456));
}

TEST_F(ScalarFixture, RandomisedAgainstPlainDot) {
  crypto::ChaCha20Rng rng(5);
  for (SessionId session = 10; session < 16; ++session) {
    std::size_t len = 1 + rng.next_below(20);
    std::vector<bn::BigUInt> a, b;
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < len; ++i) {
      std::uint64_t av = rng.next_below(1000), bv = rng.next_below(1000);
      a.emplace_back(av);
      b.emplace_back(bv);
      expected += av * bv;
    }
    auto result = run_product(session, std::move(a), std::move(b));
    ASSERT_TRUE(result.has_value()) << "session " << session;
    EXPECT_EQ(*result, bn::BigUInt(expected));
  }
}

TEST_F(ScalarFixture, ObserverOnThirdNodeReceivesResult) {
  cluster.dla(0).stage_vector_input(20, vec({2, 3}));
  cluster.dla(1).stage_vector_input(20, vec({5, 7}));
  std::optional<bn::BigUInt> at_third;
  cluster.dla(2).on_scalar_result = [&](SessionId, bn::BigUInt v) {
    at_third = std::move(v);
  };
  cluster.dla(2).start_scalar_product(
      cluster.sim(), 20, cluster.config()->dla_nodes[0],
      cluster.config()->dla_nodes[1], 2, {cluster.config()->dla_nodes[2]});
  cluster.run();
  ASSERT_TRUE(at_third.has_value());
  EXPECT_EQ(*at_third, bn::BigUInt(2 * 5 + 3 * 7));
}

TEST_F(ScalarFixture, SiteSimilarityUseCase) {
  // Two organisations compare attack-signature histograms without showing
  // them: a large dot product signals correlated incident patterns.
  auto similar =
      run_product(30, vec({9, 0, 8, 0, 7}), vec({8, 1, 9, 0, 6}));
  auto dissimilar =
      run_product(31, vec({9, 0, 8, 0, 7}), vec({0, 9, 0, 8, 0}));
  ASSERT_TRUE(similar.has_value());
  ASSERT_TRUE(dissimilar.has_value());
  EXPECT_GT(*similar, *dissimilar);
}

TEST_F(ScalarFixture, MissingInputTreatedAsZeroes) {
  // Bob stages nothing: the product collapses to zero instead of stalling.
  cluster.dla(0).stage_vector_input(40, vec({1, 2, 3}));
  std::optional<bn::BigUInt> result;
  cluster.dla(0).on_scalar_result = [&](SessionId, bn::BigUInt v) {
    result = std::move(v);
  };
  cluster.dla(0).start_scalar_product(
      cluster.sim(), 40, cluster.config()->dla_nodes[0],
      cluster.config()->dla_nodes[1], 3, {cluster.config()->dla_nodes[0]});
  cluster.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->is_zero());
}

}  // namespace
}  // namespace dla::audit
