// Unit tests for the chaos engine and trace recorder, plus the determinism
// property the whole explorer rests on: a (workload, chaos seed) pair
// replays bit-identically, across latency models, bandwidth serialisation
// and scheduled fault windows.
#include "net/chaos.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"
#include "net/trace.hpp"

namespace dla::net {
namespace {

class Sink : public Node {
 public:
  void on_message(Transport&, const Message& msg) override {
    received.push_back(msg);
  }
  std::vector<Message> received;
};

// Bounces a TTL-carrying payload around a fixed ring; chaos-injected
// duplicates fork extra bounded chains, drops end a chain early.
class RingHop : public Node {
 public:
  explicit RingHop(NodeId next) : next_(next) {}
  void on_message(Transport& sim, const Message& msg) override {
    if (msg.payload[0] == 0) return;
    Bytes payload = msg.payload;
    --payload[0];
    sim.send(id(), next_, msg.type, std::move(payload));
  }

 private:
  NodeId next_;
};

TEST(ChaosEngine, DropProbabilityOneDropsEverything) {
  Simulator sim;
  Sink a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  ChaosConfig cfg;
  cfg.drop_prob = 1.0;
  ChaosEngine chaos(1, cfg);
  sim.set_chaos(&chaos);
  for (int i = 0; i < 20; ++i) sim.send(ida, idb, 1, {0});
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.stats().chaos_drops, 20u);
  EXPECT_EQ(sim.stats().messages_dropped, 20u);
}

TEST(ChaosEngine, DupProbabilityOneDeliversEveryMessageTwice) {
  Simulator sim;
  Sink a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  ChaosConfig cfg;
  cfg.dup_prob = 1.0;
  ChaosEngine chaos(1, cfg);
  sim.set_chaos(&chaos);
  for (int i = 0; i < 10; ++i) sim.send(ida, idb, 1, {0});
  sim.run();
  EXPECT_EQ(b.received.size(), 20u);
  EXPECT_EQ(sim.stats().duplicates_injected, 10u);
  EXPECT_EQ(sim.stats().messages_delivered, 20u);
}

TEST(ChaosEngine, JitterDelaysButNeverDropsOrReorders) {
  Simulator sim;
  Sink a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  ChaosConfig cfg;
  cfg.jitter_prob = 1.0;
  cfg.jitter_max = 5;
  ChaosEngine chaos(1, cfg);
  sim.set_chaos(&chaos);
  sim.set_latency_model([](NodeId, NodeId, std::size_t) { return 100; });
  for (std::uint8_t i = 0; i < 10; ++i) sim.send(ida, idb, i, {0});
  sim.run();
  ASSERT_EQ(b.received.size(), 10u);
  EXPECT_EQ(sim.stats().jitter_events, 10u);
  EXPECT_GT(sim.now(), 100u);  // some jitter actually applied
  EXPECT_LE(sim.now(), 105u);  // bounded by jitter_max
}

TEST(ChaosEngine, ScheduledOutageCrashesAndRecovers) {
  Simulator sim;
  Sink a, b;
  NodeId ida = sim.add_node(a);
  NodeId idb = sim.add_node(b);
  ChaosEngine chaos(1, ChaosConfig{});
  chaos.add_outage(idb, /*crash_at=*/50, /*recover_at=*/150);
  EXPECT_EQ(chaos.scheduled_ops(), 2u);
  sim.set_chaos(&chaos);
  sim.set_latency_model([](NodeId, NodeId, std::size_t) { return 10; });
  // Timers tick the clock through the window; sends probe the node state.
  sim.set_timer(ida, 60);
  sim.set_timer(ida, 200);
  sim.run();  // drains both timers, applying the schedule on the way
  EXPECT_FALSE(sim.is_crashed(idb));  // recovered by 150
  sim.send(ida, idb, 1, {0});
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(ChaosEngine, RandomScheduleIsDeterministicInSeed) {
  ChaosEngine a(42, ChaosConfig{});
  ChaosEngine b(42, ChaosConfig{});
  ChaosEngine c(43, ChaosConfig{});
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  a.randomize_schedule(nodes, 3, 2, 10000, 500);
  b.randomize_schedule(nodes, 3, 2, 10000, 500);
  c.randomize_schedule(nodes, 3, 2, 10000, 500);
  EXPECT_EQ(a.scheduled_ops(), 10u);  // 3x(crash+recover) + 2x(split+heal)
  EXPECT_EQ(b.scheduled_ops(), 10u);
  EXPECT_EQ(c.scheduled_ops(), 10u);
  // Same seed must also sample identical message fates afterwards.
  Message probe{0, 1, 7, {1, 2, 3}};
  ChaosConfig lossy;
  lossy.drop_prob = 0.5;
  lossy.jitter_prob = 0.5;
  ChaosEngine d(99, lossy), e(99, lossy);
  for (int i = 0; i < 100; ++i) {
    MessageFate fd = d.sample(probe);
    MessageFate fe = e.sample(probe);
    EXPECT_EQ(fd.drop, fe.drop);
    EXPECT_EQ(fd.extra_delay, fe.extra_delay);
    EXPECT_EQ(fd.duplicate, fe.duplicate);
  }
}

TEST(TraceRecorder, DigestIsOrderAndContentSensitive) {
  TraceRecorder t1, t2, t3;
  Message m1{0, 1, 7, {1}};
  Message m2{1, 0, 8, {2}};
  t1.on_deliver(10, 0, m1);
  t1.on_deliver(20, 1, m2);
  t2.on_deliver(10, 0, m1);
  t2.on_deliver(20, 1, m2);
  t3.on_deliver(20, 1, m2);
  t3.on_deliver(10, 0, m1);
  EXPECT_EQ(t1.digest_hex(), t2.digest_hex());
  EXPECT_NE(t1.digest_hex(), t3.digest_hex());
  EXPECT_EQ(t1.event_count(), 2u);
  EXPECT_FALSE(TraceRecorder::divergence(t1, t2).has_value());
  auto div = TraceRecorder::divergence(t1, t3);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 0u);
  EXPECT_FALSE(div->description.empty());
  EXPECT_FALSE(TraceRecorder::format(t1.events()[0]).empty());
}

TEST(TraceRecorder, DivergenceReportsLengthMismatch) {
  TraceRecorder t1, t2;
  Message m{0, 1, 7, {1}};
  t1.on_deliver(10, 0, m);
  t1.on_deliver(20, 1, m);
  t2.on_deliver(10, 0, m);
  auto div = TraceRecorder::divergence(t1, t2);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 1u);
}

// The determinism property: for each of ~64 chaos seeds, and for each of
// three network shapes (pure latency model, bandwidth serialisation,
// scheduled outage + partition windows), two runs of the same seed produce
// identical trace digests, and different seeds almost always differ.
TEST(ChaosDeterminism, SameSeedReplaysIdenticallyAcrossNetworkShapes) {
  enum class Shape { Latency, Bandwidth, Faults };
  auto run_once = [](Shape shape, std::uint64_t seed) {
    Simulator sim;
    Sink sink;
    RingHop h1(2), h2(3), h3(0);
    sim.add_node(sink);           // 0
    NodeId n1 = sim.add_node(h1); // 1 -> 2 -> 3 -> 0
    sim.add_node(h2);
    sim.add_node(h3);
    switch (shape) {
      case Shape::Latency:
        sim.set_latency_model(
            [](NodeId s, NodeId d, std::size_t) { return 10 + 3 * s + d; });
        break;
      case Shape::Bandwidth:
        sim.set_latency_model([](NodeId, NodeId, std::size_t) { return 10; });
        sim.set_link_bandwidth(2.0);
        break;
      case Shape::Faults:
        break;
    }
    ChaosConfig cfg;
    cfg.drop_prob = 0.05;
    cfg.dup_prob = 0.20;
    cfg.jitter_prob = 0.30;
    cfg.jitter_max = 40;
    cfg.reorder_prob = 0.10;
    ChaosEngine chaos(seed, cfg);
    if (shape == Shape::Faults) {
      chaos.randomize_schedule({1, 2, 3}, 2, 1, /*horizon=*/5000,
                               /*max_window=*/400);
    }
    TraceRecorder trace(/*keep_events=*/false);
    sim.set_chaos(&chaos);
    sim.set_trace(&trace);
    for (int i = 0; i < 8; ++i) sim.send(0, n1, 0, {12});  // TTL 12 rings
    sim.run();
    return trace.digest_hex();
  };

  for (Shape shape :
       {Shape::Latency, Shape::Bandwidth, Shape::Faults}) {
    std::set<std::string> digests;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
      std::string first = run_once(shape, seed);
      std::string second = run_once(shape, seed);
      EXPECT_EQ(first, second) << "seed " << seed << " did not replay";
      digests.insert(first);
    }
    // Different seeds must actually explore different schedules: demand a
    // healthy spread (collisions are possible but must be rare).
    EXPECT_GT(digests.size(), 48u);
  }
}

// End-to-end: the full DLA cluster workload replays bit-identically under
// chaos -- the property the seed-sweep explorer's repro story depends on.
TEST(ChaosDeterminism, ClusterWorkloadReplaysIdentically) {
  auto run_once = [](std::uint64_t seed) {
    audit::Cluster cluster(audit::Cluster::Options{
        logm::paper_schema(), 4, 1, logm::paper_partition(), /*seed=*/13,
        /*auditor_users=*/true});
    ChaosConfig cfg;
    cfg.dup_prob = 0.15;
    cfg.jitter_prob = 0.30;
    ChaosEngine chaos(seed, cfg);
    TraceRecorder trace(/*keep_events=*/false);
    cluster.sim().set_chaos(&chaos);
    cluster.sim().set_trace(&trace);
    auto records = logm::paper_table1_records();
    for (const auto& rec : records) {
      cluster.user(0).log_record(cluster.sim(), rec.attrs,
                                 [](std::optional<logm::Glsn>) {});
      cluster.run();
    }
    std::optional<audit::QueryOutcome> outcome;
    cluster.user(0).query(cluster.sim(), "id = 'U1' AND protocl = 'UDP'",
                          [&](audit::QueryOutcome o) { outcome = std::move(o); });
    cluster.run();
    EXPECT_TRUE(outcome.has_value() && outcome->ok);
    return trace.digest_hex();
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace dla::net
