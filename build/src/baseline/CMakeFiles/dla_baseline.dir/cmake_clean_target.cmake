file(REMOVE_RECURSE
  "libdla_baseline.a"
)
