# Empty compiler generated dependencies file for dla_baseline.
# This may be replaced when dependencies are built.
