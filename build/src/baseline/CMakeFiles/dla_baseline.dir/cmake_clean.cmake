file(REMOVE_RECURSE
  "CMakeFiles/dla_baseline.dir/centralized.cpp.o"
  "CMakeFiles/dla_baseline.dir/centralized.cpp.o.d"
  "CMakeFiles/dla_baseline.dir/gmw.cpp.o"
  "CMakeFiles/dla_baseline.dir/gmw.cpp.o.d"
  "CMakeFiles/dla_baseline.dir/signature_integrity.cpp.o"
  "CMakeFiles/dla_baseline.dir/signature_integrity.cpp.o.d"
  "libdla_baseline.a"
  "libdla_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dla_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
