file(REMOVE_RECURSE
  "libdla_net.a"
)
