# Empty dependencies file for dla_net.
# This may be replaced when dependencies are built.
