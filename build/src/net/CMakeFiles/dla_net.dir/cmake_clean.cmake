file(REMOVE_RECURSE
  "CMakeFiles/dla_net.dir/bytes.cpp.o"
  "CMakeFiles/dla_net.dir/bytes.cpp.o.d"
  "CMakeFiles/dla_net.dir/sim.cpp.o"
  "CMakeFiles/dla_net.dir/sim.cpp.o.d"
  "libdla_net.a"
  "libdla_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dla_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
