file(REMOVE_RECURSE
  "CMakeFiles/dla_audit.dir/cluster.cpp.o"
  "CMakeFiles/dla_audit.dir/cluster.cpp.o.d"
  "CMakeFiles/dla_audit.dir/config.cpp.o"
  "CMakeFiles/dla_audit.dir/config.cpp.o.d"
  "CMakeFiles/dla_audit.dir/correlation.cpp.o"
  "CMakeFiles/dla_audit.dir/correlation.cpp.o.d"
  "CMakeFiles/dla_audit.dir/dla_node.cpp.o"
  "CMakeFiles/dla_audit.dir/dla_node.cpp.o.d"
  "CMakeFiles/dla_audit.dir/evidence.cpp.o"
  "CMakeFiles/dla_audit.dir/evidence.cpp.o.d"
  "CMakeFiles/dla_audit.dir/member_node.cpp.o"
  "CMakeFiles/dla_audit.dir/member_node.cpp.o.d"
  "CMakeFiles/dla_audit.dir/metrics.cpp.o"
  "CMakeFiles/dla_audit.dir/metrics.cpp.o.d"
  "CMakeFiles/dla_audit.dir/query.cpp.o"
  "CMakeFiles/dla_audit.dir/query.cpp.o.d"
  "CMakeFiles/dla_audit.dir/ticket.cpp.o"
  "CMakeFiles/dla_audit.dir/ticket.cpp.o.d"
  "CMakeFiles/dla_audit.dir/transaction_audit.cpp.o"
  "CMakeFiles/dla_audit.dir/transaction_audit.cpp.o.d"
  "CMakeFiles/dla_audit.dir/ttp_node.cpp.o"
  "CMakeFiles/dla_audit.dir/ttp_node.cpp.o.d"
  "CMakeFiles/dla_audit.dir/user_node.cpp.o"
  "CMakeFiles/dla_audit.dir/user_node.cpp.o.d"
  "CMakeFiles/dla_audit.dir/wire.cpp.o"
  "CMakeFiles/dla_audit.dir/wire.cpp.o.d"
  "libdla_audit.a"
  "libdla_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dla_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
