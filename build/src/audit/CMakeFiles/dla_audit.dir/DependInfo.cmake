
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/cluster.cpp" "src/audit/CMakeFiles/dla_audit.dir/cluster.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/cluster.cpp.o.d"
  "/root/repo/src/audit/config.cpp" "src/audit/CMakeFiles/dla_audit.dir/config.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/config.cpp.o.d"
  "/root/repo/src/audit/correlation.cpp" "src/audit/CMakeFiles/dla_audit.dir/correlation.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/correlation.cpp.o.d"
  "/root/repo/src/audit/dla_node.cpp" "src/audit/CMakeFiles/dla_audit.dir/dla_node.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/dla_node.cpp.o.d"
  "/root/repo/src/audit/evidence.cpp" "src/audit/CMakeFiles/dla_audit.dir/evidence.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/evidence.cpp.o.d"
  "/root/repo/src/audit/member_node.cpp" "src/audit/CMakeFiles/dla_audit.dir/member_node.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/member_node.cpp.o.d"
  "/root/repo/src/audit/metrics.cpp" "src/audit/CMakeFiles/dla_audit.dir/metrics.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/metrics.cpp.o.d"
  "/root/repo/src/audit/query.cpp" "src/audit/CMakeFiles/dla_audit.dir/query.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/query.cpp.o.d"
  "/root/repo/src/audit/ticket.cpp" "src/audit/CMakeFiles/dla_audit.dir/ticket.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/ticket.cpp.o.d"
  "/root/repo/src/audit/transaction_audit.cpp" "src/audit/CMakeFiles/dla_audit.dir/transaction_audit.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/transaction_audit.cpp.o.d"
  "/root/repo/src/audit/ttp_node.cpp" "src/audit/CMakeFiles/dla_audit.dir/ttp_node.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/ttp_node.cpp.o.d"
  "/root/repo/src/audit/user_node.cpp" "src/audit/CMakeFiles/dla_audit.dir/user_node.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/user_node.cpp.o.d"
  "/root/repo/src/audit/wire.cpp" "src/audit/CMakeFiles/dla_audit.dir/wire.cpp.o" "gcc" "src/audit/CMakeFiles/dla_audit.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logm/CMakeFiles/dla_logm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/dla_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
