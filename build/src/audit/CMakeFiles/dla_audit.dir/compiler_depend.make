# Empty compiler generated dependencies file for dla_audit.
# This may be replaced when dependencies are built.
