file(REMOVE_RECURSE
  "libdla_audit.a"
)
