file(REMOVE_RECURSE
  "CMakeFiles/dla_bignum.dir/biguint.cpp.o"
  "CMakeFiles/dla_bignum.dir/biguint.cpp.o.d"
  "CMakeFiles/dla_bignum.dir/montgomery.cpp.o"
  "CMakeFiles/dla_bignum.dir/montgomery.cpp.o.d"
  "CMakeFiles/dla_bignum.dir/prime.cpp.o"
  "CMakeFiles/dla_bignum.dir/prime.cpp.o.d"
  "libdla_bignum.a"
  "libdla_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dla_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
