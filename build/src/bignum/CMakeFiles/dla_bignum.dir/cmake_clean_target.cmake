file(REMOVE_RECURSE
  "libdla_bignum.a"
)
