# Empty dependencies file for dla_bignum.
# This may be replaced when dependencies are built.
