# Empty dependencies file for dla_logm.
# This may be replaced when dependencies are built.
