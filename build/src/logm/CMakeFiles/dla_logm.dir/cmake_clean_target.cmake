file(REMOVE_RECURSE
  "libdla_logm.a"
)
