file(REMOVE_RECURSE
  "CMakeFiles/dla_logm.dir/record.cpp.o"
  "CMakeFiles/dla_logm.dir/record.cpp.o.d"
  "CMakeFiles/dla_logm.dir/store.cpp.o"
  "CMakeFiles/dla_logm.dir/store.cpp.o.d"
  "CMakeFiles/dla_logm.dir/value.cpp.o"
  "CMakeFiles/dla_logm.dir/value.cpp.o.d"
  "CMakeFiles/dla_logm.dir/wal.cpp.o"
  "CMakeFiles/dla_logm.dir/wal.cpp.o.d"
  "CMakeFiles/dla_logm.dir/workload.cpp.o"
  "CMakeFiles/dla_logm.dir/workload.cpp.o.d"
  "libdla_logm.a"
  "libdla_logm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dla_logm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
