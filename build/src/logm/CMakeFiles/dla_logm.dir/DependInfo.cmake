
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logm/record.cpp" "src/logm/CMakeFiles/dla_logm.dir/record.cpp.o" "gcc" "src/logm/CMakeFiles/dla_logm.dir/record.cpp.o.d"
  "/root/repo/src/logm/store.cpp" "src/logm/CMakeFiles/dla_logm.dir/store.cpp.o" "gcc" "src/logm/CMakeFiles/dla_logm.dir/store.cpp.o.d"
  "/root/repo/src/logm/value.cpp" "src/logm/CMakeFiles/dla_logm.dir/value.cpp.o" "gcc" "src/logm/CMakeFiles/dla_logm.dir/value.cpp.o.d"
  "/root/repo/src/logm/wal.cpp" "src/logm/CMakeFiles/dla_logm.dir/wal.cpp.o" "gcc" "src/logm/CMakeFiles/dla_logm.dir/wal.cpp.o.d"
  "/root/repo/src/logm/workload.cpp" "src/logm/CMakeFiles/dla_logm.dir/workload.cpp.o" "gcc" "src/logm/CMakeFiles/dla_logm.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/dla_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
