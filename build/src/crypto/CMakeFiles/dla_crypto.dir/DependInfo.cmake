
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/accumulator.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/accumulator.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/accumulator.cpp.o.d"
  "/root/repo/src/crypto/dkg.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/dkg.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/dkg.cpp.o.d"
  "/root/repo/src/crypto/oblivious_transfer.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/oblivious_transfer.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/oblivious_transfer.cpp.o.d"
  "/root/repo/src/crypto/pohlig_hellman.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/pohlig_hellman.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/pohlig_hellman.cpp.o.d"
  "/root/repo/src/crypto/rng.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/rng.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/rng.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/shamir.cpp.o.d"
  "/root/repo/src/crypto/threshold_schnorr.cpp" "src/crypto/CMakeFiles/dla_crypto.dir/threshold_schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/dla_crypto.dir/threshold_schnorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bignum/CMakeFiles/dla_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
