file(REMOVE_RECURSE
  "libdla_crypto.a"
)
