# Empty dependencies file for dla_crypto.
# This may be replaced when dependencies are built.
