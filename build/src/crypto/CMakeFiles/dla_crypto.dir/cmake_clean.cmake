file(REMOVE_RECURSE
  "CMakeFiles/dla_crypto.dir/accumulator.cpp.o"
  "CMakeFiles/dla_crypto.dir/accumulator.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/dkg.cpp.o"
  "CMakeFiles/dla_crypto.dir/dkg.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/oblivious_transfer.cpp.o"
  "CMakeFiles/dla_crypto.dir/oblivious_transfer.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/pohlig_hellman.cpp.o"
  "CMakeFiles/dla_crypto.dir/pohlig_hellman.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/rng.cpp.o"
  "CMakeFiles/dla_crypto.dir/rng.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/rsa.cpp.o"
  "CMakeFiles/dla_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/sha256.cpp.o"
  "CMakeFiles/dla_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/shamir.cpp.o"
  "CMakeFiles/dla_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/dla_crypto.dir/threshold_schnorr.cpp.o"
  "CMakeFiles/dla_crypto.dir/threshold_schnorr.cpp.o.d"
  "libdla_crypto.a"
  "libdla_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dla_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
