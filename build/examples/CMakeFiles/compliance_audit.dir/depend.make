# Empty dependencies file for compliance_audit.
# This may be replaced when dependencies are built.
