# Empty dependencies file for membership_chain.
# This may be replaced when dependencies are built.
