file(REMOVE_RECURSE
  "CMakeFiles/membership_chain.dir/membership_chain.cpp.o"
  "CMakeFiles/membership_chain.dir/membership_chain.cpp.o.d"
  "membership_chain"
  "membership_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
