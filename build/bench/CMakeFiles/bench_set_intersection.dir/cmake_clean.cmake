file(REMOVE_RECURSE
  "CMakeFiles/bench_set_intersection.dir/bench_set_intersection.cpp.o"
  "CMakeFiles/bench_set_intersection.dir/bench_set_intersection.cpp.o.d"
  "bench_set_intersection"
  "bench_set_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_set_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
