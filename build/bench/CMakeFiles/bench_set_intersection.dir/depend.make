# Empty dependencies file for bench_set_intersection.
# This may be replaced when dependencies are built.
