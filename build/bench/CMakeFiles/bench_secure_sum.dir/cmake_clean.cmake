file(REMOVE_RECURSE
  "CMakeFiles/bench_secure_sum.dir/bench_secure_sum.cpp.o"
  "CMakeFiles/bench_secure_sum.dir/bench_secure_sum.cpp.o.d"
  "bench_secure_sum"
  "bench_secure_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secure_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
