# Empty dependencies file for bench_secure_sum.
# This may be replaced when dependencies are built.
