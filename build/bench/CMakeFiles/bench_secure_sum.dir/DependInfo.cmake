
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_secure_sum.cpp" "bench/CMakeFiles/bench_secure_sum.dir/bench_secure_sum.cpp.o" "gcc" "bench/CMakeFiles/bench_secure_sum.dir/bench_secure_sum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bignum/CMakeFiles/dla_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/logm/CMakeFiles/dla_logm.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/dla_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dla_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
