# Empty dependencies file for bench_query_processing.
# This may be replaced when dependencies are built.
