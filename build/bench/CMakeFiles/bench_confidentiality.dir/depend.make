# Empty dependencies file for bench_confidentiality.
# This may be replaced when dependencies are built.
