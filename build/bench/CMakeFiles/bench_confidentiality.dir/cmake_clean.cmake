file(REMOVE_RECURSE
  "CMakeFiles/bench_confidentiality.dir/bench_confidentiality.cpp.o"
  "CMakeFiles/bench_confidentiality.dir/bench_confidentiality.cpp.o.d"
  "bench_confidentiality"
  "bench_confidentiality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confidentiality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
