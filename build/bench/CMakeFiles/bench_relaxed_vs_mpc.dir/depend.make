# Empty dependencies file for bench_relaxed_vs_mpc.
# This may be replaced when dependencies are built.
