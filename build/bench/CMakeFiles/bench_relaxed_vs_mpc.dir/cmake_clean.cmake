file(REMOVE_RECURSE
  "CMakeFiles/bench_relaxed_vs_mpc.dir/bench_relaxed_vs_mpc.cpp.o"
  "CMakeFiles/bench_relaxed_vs_mpc.dir/bench_relaxed_vs_mpc.cpp.o.d"
  "bench_relaxed_vs_mpc"
  "bench_relaxed_vs_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relaxed_vs_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
