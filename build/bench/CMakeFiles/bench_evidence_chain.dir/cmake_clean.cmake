file(REMOVE_RECURSE
  "CMakeFiles/bench_evidence_chain.dir/bench_evidence_chain.cpp.o"
  "CMakeFiles/bench_evidence_chain.dir/bench_evidence_chain.cpp.o.d"
  "bench_evidence_chain"
  "bench_evidence_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evidence_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
