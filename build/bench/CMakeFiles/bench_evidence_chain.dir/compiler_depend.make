# Empty compiler generated dependencies file for bench_evidence_chain.
# This may be replaced when dependencies are built.
