file(REMOVE_RECURSE
  "CMakeFiles/bench_logging_throughput.dir/bench_logging_throughput.cpp.o"
  "CMakeFiles/bench_logging_throughput.dir/bench_logging_throughput.cpp.o.d"
  "bench_logging_throughput"
  "bench_logging_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logging_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
