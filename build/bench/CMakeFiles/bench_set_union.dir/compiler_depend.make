# Empty compiler generated dependencies file for bench_set_union.
# This may be replaced when dependencies are built.
