file(REMOVE_RECURSE
  "CMakeFiles/bench_set_union.dir/bench_set_union.cpp.o"
  "CMakeFiles/bench_set_union.dir/bench_set_union.cpp.o.d"
  "bench_set_union"
  "bench_set_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_set_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
