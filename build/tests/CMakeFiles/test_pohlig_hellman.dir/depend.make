# Empty dependencies file for test_pohlig_hellman.
# This may be replaced when dependencies are built.
