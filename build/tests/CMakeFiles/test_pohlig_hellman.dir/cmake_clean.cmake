file(REMOVE_RECURSE
  "CMakeFiles/test_pohlig_hellman.dir/pohlig_hellman_test.cpp.o"
  "CMakeFiles/test_pohlig_hellman.dir/pohlig_hellman_test.cpp.o.d"
  "test_pohlig_hellman"
  "test_pohlig_hellman.pdb"
  "test_pohlig_hellman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pohlig_hellman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
