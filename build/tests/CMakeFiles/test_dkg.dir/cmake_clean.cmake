file(REMOVE_RECURSE
  "CMakeFiles/test_dkg.dir/dkg_test.cpp.o"
  "CMakeFiles/test_dkg.dir/dkg_test.cpp.o.d"
  "test_dkg"
  "test_dkg.pdb"
  "test_dkg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
