# Empty compiler generated dependencies file for test_dkg.
# This may be replaced when dependencies are built.
