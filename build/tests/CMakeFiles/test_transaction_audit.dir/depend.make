# Empty dependencies file for test_transaction_audit.
# This may be replaced when dependencies are built.
