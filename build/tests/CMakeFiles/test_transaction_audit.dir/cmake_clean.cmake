file(REMOVE_RECURSE
  "CMakeFiles/test_transaction_audit.dir/transaction_audit_test.cpp.o"
  "CMakeFiles/test_transaction_audit.dir/transaction_audit_test.cpp.o.d"
  "test_transaction_audit"
  "test_transaction_audit.pdb"
  "test_transaction_audit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transaction_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
