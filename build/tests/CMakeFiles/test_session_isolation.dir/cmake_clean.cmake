file(REMOVE_RECURSE
  "CMakeFiles/test_session_isolation.dir/session_isolation_test.cpp.o"
  "CMakeFiles/test_session_isolation.dir/session_isolation_test.cpp.o.d"
  "test_session_isolation"
  "test_session_isolation.pdb"
  "test_session_isolation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
