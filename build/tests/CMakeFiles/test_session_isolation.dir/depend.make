# Empty dependencies file for test_session_isolation.
# This may be replaced when dependencies are built.
