# Empty dependencies file for test_ticket.
# This may be replaced when dependencies are built.
