file(REMOVE_RECURSE
  "CMakeFiles/test_ticket.dir/ticket_test.cpp.o"
  "CMakeFiles/test_ticket.dir/ticket_test.cpp.o.d"
  "test_ticket"
  "test_ticket.pdb"
  "test_ticket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ticket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
