file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_schnorr.dir/threshold_schnorr_test.cpp.o"
  "CMakeFiles/test_threshold_schnorr.dir/threshold_schnorr_test.cpp.o.d"
  "test_threshold_schnorr"
  "test_threshold_schnorr.pdb"
  "test_threshold_schnorr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_schnorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
