# Empty dependencies file for test_certified_report.
# This may be replaced when dependencies are built.
