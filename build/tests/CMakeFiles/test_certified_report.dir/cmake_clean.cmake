file(REMOVE_RECURSE
  "CMakeFiles/test_certified_report.dir/certified_report_test.cpp.o"
  "CMakeFiles/test_certified_report.dir/certified_report_test.cpp.o.d"
  "test_certified_report"
  "test_certified_report.pdb"
  "test_certified_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certified_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
