file(REMOVE_RECURSE
  "CMakeFiles/test_oblivious_transfer.dir/oblivious_transfer_test.cpp.o"
  "CMakeFiles/test_oblivious_transfer.dir/oblivious_transfer_test.cpp.o.d"
  "test_oblivious_transfer"
  "test_oblivious_transfer.pdb"
  "test_oblivious_transfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oblivious_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
