file(REMOVE_RECURSE
  "CMakeFiles/test_evidence.dir/evidence_test.cpp.o"
  "CMakeFiles/test_evidence.dir/evidence_test.cpp.o.d"
  "test_evidence"
  "test_evidence.pdb"
  "test_evidence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
