# Empty compiler generated dependencies file for test_evidence.
# This may be replaced when dependencies are built.
