# Empty dependencies file for test_prime.
# This may be replaced when dependencies are built.
