file(REMOVE_RECURSE
  "CMakeFiles/test_jitter_stress.dir/jitter_stress_test.cpp.o"
  "CMakeFiles/test_jitter_stress.dir/jitter_stress_test.cpp.o.d"
  "test_jitter_stress"
  "test_jitter_stress.pdb"
  "test_jitter_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jitter_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
