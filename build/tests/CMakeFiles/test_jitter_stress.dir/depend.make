# Empty dependencies file for test_jitter_stress.
# This may be replaced when dependencies are built.
