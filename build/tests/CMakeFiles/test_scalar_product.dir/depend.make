# Empty dependencies file for test_scalar_product.
# This may be replaced when dependencies are built.
