file(REMOVE_RECURSE
  "CMakeFiles/test_scalar_product.dir/scalar_product_test.cpp.o"
  "CMakeFiles/test_scalar_product.dir/scalar_product_test.cpp.o.d"
  "test_scalar_product"
  "test_scalar_product.pdb"
  "test_scalar_product[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalar_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
