add_test([=[SessionIsolation.MixedProtocolsInterleaveCorrectly]=]  /root/repo/build/tests/test_session_isolation [==[--gtest_filter=SessionIsolation.MixedProtocolsInterleaveCorrectly]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SessionIsolation.MixedProtocolsInterleaveCorrectly]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_session_isolation_TESTS SessionIsolation.MixedProtocolsInterleaveCorrectly)
