// Distributed event correlation for intrusion detection — the application
// the paper's introduction motivates ("distributed event correlation for
// intrusion detection", "multiple host intrusion/anomaly detection").
//
// Scenario: several independent organisations log connection events into a
// shared DLA cluster. None will reveal its raw logs, but together they want
// to find *sources probing many of them* (a distributed scan is harmless at
// each site and only visible in aggregate — Section 4.2's "distributed
// security bleaching").
//
// Two confidential mechanisms are shown:
//   1. secure set intersection over per-organisation suspect sets: a source
//      flagged by EVERY organisation surfaces, while each org's full
//      suspect list stays private;
//   2. confidential audit queries correlating events across DLA nodes
//      without any node seeing whole records.
#include <iostream>
#include <map>
#include <set>

#include "audit/cluster.hpp"
#include "audit/correlation.hpp"
#include "crypto/pohlig_hellman.hpp"

using namespace dla;

namespace {

logm::Schema ids_schema() {
  return logm::Schema({
      {"Time", logm::ValueType::Int, false},
      {"src", logm::ValueType::Text, false},
      {"dst_port", logm::ValueType::Int, false},
      {"site", logm::ValueType::Text, false},
      {"verdict", logm::ValueType::Text, true},  // site-private label
  });
}

}  // namespace

int main() {
  std::cout << "== confidential multi-site intrusion detection ==\n\n";

  // Three organisations (user nodes) share a 3-node DLA cluster.
  audit::Cluster cluster(audit::Cluster::Options{
      ids_schema(), /*dla_count=*/3, /*user_count=*/3, std::nullopt,
      /*seed=*/99, /*auditor_users=*/true});

  // Synthetic traffic: "10.0.0.66" probes every site on low ports;
  // other sources touch single sites only.
  struct Event {
    std::size_t site;
    std::int64_t time;
    const char* src;
    std::int64_t port;
    const char* verdict;
  };
  std::vector<Event> events = {
      {0, 1000, "10.0.0.66", 22, "suspicious"},
      {0, 1010, "192.168.1.5", 443, "normal"},
      {0, 1020, "10.0.0.66", 23, "suspicious"},
      {1, 1005, "10.0.0.66", 22, "suspicious"},
      {1, 1015, "172.16.0.9", 80, "normal"},
      {1, 1030, "10.0.0.66", 3389, "suspicious"},
      {2, 1002, "10.0.0.66", 22, "suspicious"},
      {2, 1040, "10.1.1.1", 8080, "suspicious"},
  };
  std::size_t logged = 0;
  for (const auto& ev : events) {
    std::map<std::string, logm::Value> attrs = {
        {"Time", logm::Value(ev.time)},
        {"src", logm::Value(ev.src)},
        {"dst_port", logm::Value(ev.port)},
        {"site", logm::Value("site" + std::to_string(ev.site))},
        {"verdict", logm::Value(ev.verdict)},
    };
    cluster.user(ev.site).log_record(
        cluster.sim(), attrs,
        [&](std::optional<logm::Glsn> g) { logged += g.has_value(); });
  }
  cluster.run();
  std::cout << "sites logged " << logged << " events into the DLA cluster\n\n";

  // --- 1. Secure set intersection over per-site suspect lists ------------
  // Each site privately flags sources it finds suspicious; only sources
  // flagged by ALL sites emerge from the ring protocol (Figure 4).
  std::map<std::size_t, std::set<std::string>> suspects = {
      {0, {"10.0.0.66", "192.168.99.99"}},
      {1, {"10.0.0.66", "172.16.0.9"}},
      {2, {"10.0.0.66", "10.1.1.1"}},
  };
  const auto& domain = cluster.config()->ph_domain;
  // Remember encodings so the plaintext survivors can be named.
  std::map<std::string, std::string> by_encoding;
  const audit::SessionId kSession = 1;
  for (auto& [site, list] : suspects) {
    std::vector<bn::BigUInt> elements;
    for (const auto& src : list) {
      auto enc = crypto::encode_element(domain, src);
      by_encoding[enc.to_hex()] = src;
      elements.push_back(enc);
    }
    cluster.dla(site).stage_set_input(kSession, std::move(elements));
  }
  cluster.dla(0).on_set_result = [&](audit::SessionId,
                                     std::vector<bn::BigUInt> result) {
    std::cout << "suspects flagged by EVERY site (via secure intersection):\n";
    for (const auto& e : result) {
      std::cout << "  -> " << by_encoding[e.to_hex()] << "\n";
    }
  };
  audit::SetSpec spec;
  spec.session = kSession;
  spec.op = audit::SetOp::Intersect;
  spec.participants = cluster.config()->dla_nodes;
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();

  // --- 2. Confidential cross-site audit queries --------------------------
  auto ask = [&](const std::string& criterion) {
    cluster.user(0).query(cluster.sim(), criterion,
                          [criterion](audit::QueryOutcome outcome) {
                            std::cout << "Q: " << criterion << " -> "
                                      << (outcome.ok ? std::to_string(
                                                           outcome.glsns.size()) +
                                                           " event(s)"
                                                     : outcome.error)
                                      << "\n";
                          });
    cluster.run();
  };
  std::cout << "\ncorrelating events confidentially:\n";
  ask("src = '10.0.0.66' AND dst_port <= 23");
  ask("verdict = 'suspicious' AND NOT site = 'site0'");
  ask("dst_port >= 3389 OR dst_port = 22");

  // --- 3. Live correlation monitoring over tumbling windows --------------
  // The monitor audits COUNT aggregates per event-time window; the scanner
  // bursts past the threshold exactly once.
  std::cout << "\nlive correlation monitor (threshold: 3 suspicious events "
               "per 50-tick window):\n";
  audit::CorrelationMonitor monitor(
      cluster.user(0),
      {audit::CorrelationRule{"scan-burst", "src = '10.0.0.66'", "Time", 50,
                              3}},
      /*poll_interval=*/5000);
  cluster.sim().add_node(monitor);
  monitor.max_sweeps = 2;  // windows [1000,1049] and [1050,1099]
  monitor.on_window = [](const audit::CorrelationAlert& a) {
    std::cout << "  window [" << a.window_start << ", " << a.window_end
              << "]: " << a.count << " event(s)\n";
  };
  monitor.on_alert = [](const audit::CorrelationAlert& a) {
    std::cout << "  >> ALERT (" << a.rule << "): " << a.count
              << " correlated events across sites\n";
  };
  monitor.start(cluster.sim(), 1000);
  cluster.run();

  std::cout << "\nno DLA node ever held a full event record; sites only\n"
               "revealed the one suspect every site already agreed on.\n";
  return 0;
}
