// Confidential auditing of e-commerce transactions — the paper's running
// use case (Section 2: "auditing of transactions across multiple
// independent sources", non-repudiation, order of events).
//
// Demonstrates the statistics primitives of Section 3 over real cluster
// state:
//   * secure sum: total transaction volume across DLA nodes without any
//     node revealing its local subtotal;
//   * weighted secure sum: fee-weighted volume (public per-class weights);
//   * secure max / rank via the blind TTP: which node processed the highest
//     volume, and each node's private rank, with the TTP seeing only
//     transformed values;
//   * event-order audit queries over the fragmented log.
#include <iostream>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

using namespace dla;

int main() {
  std::cout << "== confidential e-commerce transaction audit ==\n\n";

  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), /*dla_count=*/4, /*user_count=*/2,
      logm::paper_partition(), /*seed=*/7, /*auditor_users=*/true});

  // A synthetic day of trading: 200 events over the paper's schema.
  crypto::ChaCha20Rng rng(20260708);
  logm::WorkloadSpec wspec;
  wspec.records = 200;
  wspec.users = 2;
  wspec.transactions = 40;
  auto records = logm::generate_workload(wspec, rng);
  std::size_t logged = 0;
  for (const auto& rec : records) {
    cluster.user(rec.attrs.at("id").as_text() == "U0" ? 0 : 1)
        .log_record(cluster.sim(), rec.attrs,
                    [&](std::optional<logm::Glsn> g) { logged += g.has_value(); });
  }
  cluster.run();
  std::cout << "cluster ingested " << logged << " transaction events\n\n";

  // Each DLA node's private statistic: the volume (sum of C2, in cents)
  // across fragments it stores. P1 is the only node storing C2, so give the
  // others synthetic per-node business volumes to aggregate.
  std::uint64_t volumes[4] = {0, 0, 0, 0};
  cluster.dla(1).store().for_each([&](const logm::Fragment& f) {
    if (auto it = f.attrs.find("C2"); it != f.attrs.end()) {
      volumes[1] += static_cast<std::uint64_t>(it->second.as_real() * 100);
    }
  });
  volumes[0] = 812345;  // per-site settlement volumes (private)
  volumes[2] = 997001;
  volumes[3] = 455500;

  // --- secure sum ---------------------------------------------------------
  const audit::SessionId kSum = 1;
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_sum_input(kSum, bn::BigUInt(volumes[i]));
  }
  cluster.dla(0).on_sum_result = [&](audit::SessionId, bn::BigUInt total) {
    std::cout << "secure sum of private volumes  = " << total.to_decimal()
              << " cents (plain check: "
              << volumes[0] + volumes[1] + volumes[2] + volumes[3] << ")\n";
  };
  audit::SumSpec sum;
  sum.session = kSum;
  sum.participants = cluster.config()->dla_nodes;
  sum.threshold_k = 3;
  sum.collector = cluster.config()->dla_nodes[0];
  sum.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_sum(cluster.sim(), sum);
  cluster.run();

  // --- weighted secure sum (public fee schedule) --------------------------
  const audit::SessionId kWeighted = 2;
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_sum_input(kWeighted, bn::BigUInt(volumes[i]));
  }
  cluster.dla(0).on_sum_result = [&](audit::SessionId, bn::BigUInt total) {
    std::cout << "fee-weighted volume (x1,x2,x3,x1) = " << total.to_decimal()
              << "\n";
  };
  sum.session = kWeighted;
  sum.weights = {bn::BigUInt(1), bn::BigUInt(2), bn::BigUInt(3),
                 bn::BigUInt(1)};
  cluster.dla(0).start_sum(cluster.sim(), sum);
  cluster.run();

  // --- secure max + private ranks via the blind TTP ----------------------
  const audit::SessionId kMax = 3, kRank = 4;
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.dla(i).stage_cmp_input(kMax, bn::BigUInt(volumes[i]));
    cluster.dla(i).stage_cmp_input(kRank, bn::BigUInt(volumes[i]));
    cluster.dla(i).on_rank = [i](audit::SessionId, std::uint32_t rank) {
      std::cout << "  P" << i << " privately learns its volume rank: " << rank
                << "\n";
    };
  }
  cluster.dla(0).on_cmp_result = [](audit::SessionId, audit::CmpOpKind,
                                    std::uint32_t winner) {
    std::cout << "secure max: node P" << winner
              << " processed the highest volume (TTP saw only transformed "
                 "values)\n";
  };
  audit::CmpSpec cmp;
  cmp.session = kMax;
  cmp.op = audit::CmpOpKind::Max;
  cmp.participants = cluster.config()->dla_nodes;
  cmp.ttp = cluster.config()->ttp;
  cmp.observers = {cluster.config()->dla_nodes[0]};
  cluster.dla(0).start_cmp(cluster.sim(), cmp);
  cmp.session = kRank;
  cmp.op = audit::CmpOpKind::Rank;
  cmp.observers = {};
  cluster.dla(0).start_cmp(cluster.sim(), cmp);
  cluster.run();

  // --- order-of-events and non-repudiation style queries ------------------
  std::cout << "\naudit queries over the fragmented log:\n";
  auto ask = [&](const std::string& criterion) {
    cluster.user(0).query(cluster.sim(), criterion,
                          [criterion](audit::QueryOutcome outcome) {
                            std::cout << "  Q: " << criterion << " -> "
                                      << (outcome.ok ? std::to_string(
                                                           outcome.glsns.size()) +
                                                           " hit(s)"
                                                     : outcome.error)
                                      << "\n";
                          });
    cluster.run();
  };
  std::int64_t t0 = records[10].attrs.at("Time").as_int();
  std::int64_t t1 = records[150].attrs.at("Time").as_int();
  ask("Time >= " + std::to_string(t0) + " AND Time <= " + std::to_string(t1) +
      " AND C2 > 900.0");
  ask("id = 'U0' AND protocl = 'TCP' AND C1 >= 90");
  ask("C1 < C2");  // cross-node join: flagged-amount consistency rule

  std::cout << "\nnote: every statistic above was computed without any DLA\n"
               "node or the TTP seeing another party's plaintext values.\n";
  return 0;
}
