// Quickstart: stand up a DLA cluster, log the paper's Table 1 events
// confidentially, run audit queries, and check log integrity.
//
//   $ ./quickstart
//
// Walks the full public API surface end to end:
//   1. build a Cluster over the paper's schema and 4-node partition,
//   2. log records through a user node (glsn sequencing, fragmentation,
//      accumulator deposits all happen behind log_record),
//   3. issue confidential audit queries (local, cross-node, TTP join),
//   4. run the distributed integrity check, then tamper with a fragment
//      and watch it fail.
#include <iostream>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

using namespace dla;

int main() {
  std::cout << "== DLA quickstart ==\n\n";

  // 1. Cluster: 4 DLA nodes with the paper's Tables 2-5 attribute split,
  //    one blind TTP, one application node with an auditor-scope ticket.
  //    certify_reports deals a (3,4) threshold Schnorr key so every query
  //    result is co-signed by a majority of the cluster.
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), /*dla_count=*/4, /*user_count=*/1,
      logm::paper_partition(), /*seed=*/2026, /*auditor_users=*/true,
      /*certify_reports=*/true});

  // 2. Log Table 1 through the confidential logging path.
  std::vector<logm::Glsn> glsns;
  for (const auto& record : logm::paper_table1_records()) {
    cluster.user(0).log_record(cluster.sim(), record.attrs,
                               [&](std::optional<logm::Glsn> glsn) {
                                 if (glsn) glsns.push_back(*glsn);
                               });
  }
  cluster.run();
  std::cout << "logged " << glsns.size()
            << " records; fragments per node: " << cluster.dla(0).store().size()
            << "\n";
  std::cout << "P0 holds only attributes:";
  for (const auto& a : cluster.config()->partition.attributes_of(0)) {
    std::cout << ' ' << a;
  }
  std::cout << "  (no node sees a full record)\n\n";

  // 3. Confidential audit queries.
  auto ask = [&](const std::string& criterion) {
    cluster.user(0).query(
        cluster.sim(), criterion,
        [criterion](audit::QueryOutcome outcome) {
          std::cout << "Q: " << criterion << "\n   -> ";
          if (!outcome.ok) {
            std::cout << "error: " << outcome.error << "\n";
            return;
          }
          std::cout << outcome.glsns.size() << " hit(s):";
          for (auto g : outcome.glsns)
            std::cout << " " << std::hex << g << std::dec;
          std::cout << (outcome.certified ? "  [3-of-4 certified]" : "")
                    << "\n";
        });
    cluster.run();
  };
  ask("id = 'U1' AND C2 > 100.0");                  // local to P1
  ask("id = 'U1' AND protocl = 'UDP'");             // cross P1/P3 conjunction
  ask("id = 'U3' OR protocl = 'TCP'");              // cross disjunction
  ask("C1 < C2 AND Tid = 'T1100267'");              // blind-TTP join + local

  // Confidential aggregates: the auditor learns the statistic, never the
  // raw rows ("number of transactions, total of volumes" of the abstract).
  cluster.user(0).aggregate_query(
      cluster.sim(), "protocl = 'UDP'", audit::AggOp::Sum, "C2",
      [](audit::AggregateOutcome o) {
        std::cout << "AGG: SUM(C2) over UDP rows -> " << o.value << " over "
                  << o.count << " record(s)\n";
      });
  cluster.user(0).aggregate_query(
      cluster.sim(), "Tid = 'T1100265'", audit::AggOp::Count, "",
      [](audit::AggregateOutcome o) {
        std::cout << "AGG: COUNT of T1100265 events -> " << o.count << "\n";
      });
  cluster.run();

  // 4. Integrity: the accumulator circulation passes on intact logs...
  cluster.dla(0).on_integrity_result = [](audit::SessionId, logm::Glsn glsn,
                                          bool ok) {
    std::cout << "\nintegrity check for glsn " << std::hex << glsn << std::dec
              << ": " << (ok ? "PASS" : "FAIL") << "\n";
  };
  cluster.dla(0).start_integrity_check(cluster.sim(), 1, glsns[0]);
  cluster.run();

  // ...and detects a compromised node rewriting history.
  logm::Fragment tampered = *cluster.dla(1).store().get(glsns[0]);
  tampered.attrs["C2"] = logm::Value(1000000.0);
  cluster.dla(1).store().put(tampered);
  cluster.dla(0).start_integrity_check(cluster.sim(), 2, glsns[0]);
  cluster.run();

  const auto& stats = cluster.sim().stats();
  std::cout << "\nsimulated network totals: " << stats.messages_sent
            << " messages, " << stats.bytes_sent << " bytes\n";
  return 0;
}
