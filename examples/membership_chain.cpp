// Anonymous-yet-authenticated DLA membership (Section 4.2, Figures 6-7).
//
// Walks the whole evidence-chain lifecycle:
//   * members obtain blind-signed tokens from the credential authority
//     (the CA never sees whose pseudonym it signs),
//   * the founder bootstraps the chain, then each tail invites the next
//     member through the PP -> SC -> RE handshake,
//   * the finished chain verifies piece by piece,
//   * a member that double-invites forks the chain — pooling the branches
//     exposes its pseudonym (the paper's misconduct deterrent).
#include <iostream>
#include <memory>
#include <vector>

#include "audit/member_node.hpp"
#include "net/sim.hpp"

using namespace dla;

int main() {
  std::cout << "== anonymous DLA membership via evidence chains ==\n\n";

  net::Simulator sim;
  audit::CaNode ca("CA", crypto::RsaKeyPair::fixed512());
  net::NodeId ca_id = sim.add_node(ca);

  // Five prospective DLA nodes acquire blind tokens.
  std::vector<std::unique_ptr<audit::MemberNode>> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(
        std::make_unique<audit::MemberNode>("P" + std::to_string(i), 100 + i));
    sim.add_node(*members.back());
    members.back()->acquire_token(sim, ca_id, ca.public_key(), [i](bool ok) {
      std::cout << "P" << i << " token acquisition: "
                << (ok ? "ok (CA signed blindly)" : "FAILED") << "\n";
    });
  }
  sim.run();
  std::cout << "CA issued " << ca.tokens_issued()
            << " tokens without learning any pseudonym\n\n";

  // Founder bootstraps, then the chain grows one invite at a time.
  members[0]->found_chain("founding: store fragments, serve audits");
  for (int i = 0; i < 4; ++i) {
    members[i + 1]->on_joined = [i](const audit::EvidenceChain& chain) {
      std::cout << "P" << i + 1 << " joined; chain length " << chain.size()
                << "\n";
    };
    members[i]->invite(sim, members[i + 1]->id(),
                       "serve app-" + std::to_string(i));
    sim.run();
  }

  // Verify the final chain end to end.
  const auto& chain = members[4]->chain();
  auto verification = chain.verify(ca.public_key());
  std::cout << "\nfinal chain: " << chain.size() << " pieces, verification "
            << (verification.ok ? "PASSED" : "FAILED: " + verification.failure)
            << "\n";
  for (const auto& piece : chain.pieces()) {
    std::cout << "  piece " << piece.index << ": issuer "
              << piece.issuer_pseudonym.substr(0, 12) << "... invited "
              << piece.invitee_pseudonym.substr(0, 12) << "... terms '"
              << piece.terms.substr(0, 40) << "'\n";
  }
  std::cout << "invite authority now rests with the tail only: ";
  for (int i = 0; i < 5; ++i) {
    std::cout << "P" << i << "=" << members[i]->has_invite_authority() << " ";
  }
  std::cout << "\n\n";

  // Misconduct: P2 (authority long gone) forks the chain with a second
  // invite. The fork verifies in isolation, but pooling branches exposes it.
  audit::MemberNode outsider("PX", 999);
  sim.add_node(outsider);
  outsider.acquire_token(sim, ca_id, ca.public_key(), nullptr);
  sim.run();
  members[2]->set_allow_misconduct(true);
  members[2]->invite(sim, outsider.id(), "off-the-books deal");
  sim.run();

  std::vector<audit::EvidencePiece> pool;
  for (const auto& p : members[4]->chain().pieces()) pool.push_back(p);
  for (const auto& p : outsider.chain().pieces()) pool.push_back(p);
  auto exposed = audit::detect_double_invite(pool);
  std::cout << "double-invite audit over pooled branches: ";
  if (exposed) {
    std::cout << "EXPOSED pseudonym " << exposed->substr(0, 12) << "... ";
    std::cout << (*exposed == members[2]->pseudonym() ? "(= P2, correct)\n"
                                                      : "(unexpected!)\n");
  } else {
    std::cout << "nothing found (unexpected)\n";
  }
  return 0;
}
