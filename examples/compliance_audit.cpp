// Transaction-compliance auditing with durable storage — exercises the
// R_T specification checking of Eqs. (1)-(2) ("verify the conformance of
// system states with transaction specifications"), confidential
// aggregates, and the WAL-backed fragment store.
//
// Scenario: a payment processor logs settlement transactions into the DLA
// cluster. The compliance rules R_T:
//   r0: every event carries a non-negative amount        (PerEventCriterion)
//   r1: events of a transaction are time-ordered         (EventOrder)
//   r2: both counterparties appear on the record         (DistinctParties)
//   r3: no replayed events                               (NoDuplicateEvents)
// The auditor finds the violating transactions, pulls confidential
// aggregates for the quarterly report, and the DLA node's storage survives
// a simulated crash via its write-ahead log.
#include <filesystem>
#include <iostream>
#include <optional>

#include "audit/cluster.hpp"
#include "audit/transaction_audit.hpp"
#include "logm/wal.hpp"
#include "logm/workload.hpp"

using namespace dla;

int main() {
  std::cout << "== transaction compliance audit ==\n\n";

  // --- build a day of settlements, with two seeded violations ------------
  crypto::ChaCha20Rng rng(777);
  logm::WorkloadSpec spec;
  spec.records = 150;
  spec.users = 4;
  spec.transactions = 30;
  auto records = logm::generate_workload(spec, rng);
  // Violation 1: a negative amount sneaks into transaction T3.
  for (auto& rec : records) {
    if (rec.attrs.at("Tid").as_text() == "T3") {
      rec.attrs["C2"] = logm::Value(-250.0);
      break;
    }
  }
  // Violation 2: an out-of-order (backdated) event in T5.
  bool backdated = false;
  for (auto& rec : records) {
    if (!backdated && rec.attrs.at("Tid").as_text() == "T5") {
      backdated = true;  // skip the first T5 event
      continue;
    }
    if (backdated && rec.attrs.at("Tid").as_text() == "T5") {
      rec.attrs["Time"] = logm::Value(std::int64_t{1});
      break;
    }
  }

  // --- R_T conformance over the grouped transactions ---------------------
  auto txns = logm::group_into_transactions(records);
  audit::TransactionAuditor auditor(
      logm::paper_schema(),
      {audit::PerEventCriterion{"C2 >= 0.0"},
       audit::EventOrder{"Time", false},
       audit::DistinctParties{1},
       audit::NoDuplicateEvents{}});
  auto violations = auditor.find_violations(txns);
  std::cout << "audited " << txns.size() << " transactions against 4 rules; "
            << violations.size() << " non-conforming:\n";
  for (const auto& report : violations) {
    for (const auto& v : report.verdicts) {
      if (!v.satisfied) {
        std::cout << "  tsn " << report.tsn << ": rule " << v.rule_index
                  << " — " << v.detail << "\n";
      }
    }
  }

  // --- confidential aggregates for the quarterly report ------------------
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), 4, 1, logm::paper_partition(), /*seed=*/5,
      /*auditor_users=*/true, /*certify_reports=*/true});
  for (const auto& rec : records) {
    cluster.user(0).log_record(cluster.sim(), rec.attrs,
                               [](std::optional<logm::Glsn>) {});
  }
  cluster.run();
  auto aggregate = [&](const std::string& label, const std::string& criterion,
                       audit::AggOp op, const std::string& attr) {
    cluster.user(0).aggregate_query(
        cluster.sim(), criterion, op, attr,
        [label](audit::AggregateOutcome o) {
          std::cout << "  " << label << " = "
                    << (o.ok ? std::to_string(o.value) : o.error) << "\n";
        });
    cluster.run();
  };
  std::cout << "\nquarterly statistics (no raw record ever leaves its node):\n";
  aggregate("settlement volume (all)", "Time > 0", audit::AggOp::Sum, "C2");
  aggregate("negative-amount events", "C2 < 0.0", audit::AggOp::Count, "");
  aggregate("largest settlement", "Time > 0", audit::AggOp::Max, "C2");

  // --- durable storage: the fragment WAL survives a crash ----------------
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "dla_compliance_example";
  fs::create_directories(dir);
  std::string wal_path = (dir / "p1.wal").string();
  fs::remove(wal_path);
  {
    logm::WalFragmentStore durable(wal_path);
    cluster.dla(1).store().for_each(
        [&](const logm::Fragment& f) { durable.put(f); });
    std::cout << "\nP1 persisted " << durable.store().size()
              << " fragments to its WAL (" << fs::file_size(wal_path)
              << " bytes)\n";
  }  // "crash": the store object is gone
  logm::WalFragmentStore recovered(wal_path);
  std::cout << "after restart P1 recovered " << recovered.store().size()
            << " fragments, " << recovered.corrupt_frames_skipped()
            << " corrupt frames skipped\n";
  std::size_t reclaimed = recovered.compact();
  std::cout << "compaction reclaimed " << reclaimed << " bytes\n";
  fs::remove_all(dir);
  return 0;
}
