// E9 — confidential logging path (Figure 2): records/second through glsn
// sequencing + fragmentation + accumulator deposit, across cluster sizes,
// against the centralized repository of Figure 1.
//
// Expected shape: the DLA path pays ~(3n + majority-round) messages and one
// accumulator fold per record, so per-record cost grows linearly with n;
// the centralized baseline is a single message and wins raw throughput —
// the price of zero store confidentiality.
#include <benchmark/benchmark.h>

#include "audit/cluster.hpp"
#include "baseline/centralized.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

void BM_DlaLogging(benchmark::State& state) {
  const std::size_t n_nodes = static_cast<std::size_t>(state.range(0));
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  crypto::ChaCha20Rng rng(23);
  logm::WorkloadSpec spec;
  spec.records = batch;
  auto records = logm::generate_workload(spec, rng);
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), n_nodes, 1,
      logm::AttributePartition::round_robin(logm::paper_schema(), n_nodes),
      /*seed=*/9, /*auditor_users=*/true});
  cluster.sim().reset_stats();
  std::size_t logged = 0;
  for (auto _ : state) {
    for (const auto& rec : records) {
      cluster.user(0).log_record(cluster.sim(), rec.attrs,
                                 [&](std::optional<logm::Glsn> g) {
                                   logged += g.has_value();
                                 });
      // Sequential submission: one record fully logged per round trip, the
      // realistic client pattern (and it keeps sequencer contention out of
      // the measurement).
      cluster.run();
    }
  }
  if (logged != state.iterations() * batch) {
    state.SkipWithError("some records were not logged");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(logged));
  state.counters["nodes"] = static_cast<double>(n_nodes);
  state.counters["msgs/record"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent) /
          std::max<double>(1.0, static_cast<double>(logged)),
      benchmark::Counter::kDefaults);
  state.counters["bytes/record"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().bytes_sent) /
          std::max<double>(1.0, static_cast<double>(logged)),
      benchmark::Counter::kDefaults);
}

void BM_DlaLoggingBandwidthLimited(benchmark::State& state) {
  // Same path under the FIFO link model: bandwidth in bytes/us. At low
  // rates the fragment fan-out serialises on the user's uplinks and the
  // simulated completion time stretches accordingly.
  const double bandwidth = static_cast<double>(state.range(0)) / 100.0;
  crypto::ChaCha20Rng rng(29);
  logm::WorkloadSpec spec;
  spec.records = 32;
  auto records = logm::generate_workload(spec, rng);
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), 4, 1, logm::paper_partition(), /*seed=*/13,
      /*auditor_users=*/true});
  cluster.sim().set_link_bandwidth(bandwidth);
  net::SimTime start = cluster.sim().now();
  std::size_t logged = 0;
  for (auto _ : state) {
    for (const auto& rec : records) {
      cluster.user(0).log_record(cluster.sim(), rec.attrs,
                                 [&](std::optional<logm::Glsn> g) {
                                   logged += g.has_value();
                                 });
      cluster.run();
    }
  }
  state.counters["bandwidth_B_per_us"] = bandwidth;
  state.counters["sim_ms_total"] = benchmark::Counter(
      static_cast<double>(cluster.sim().now() - start) / 1000.0,
      benchmark::Counter::kAvgIterations);
  if (logged != state.iterations() * records.size()) {
    state.SkipWithError("records lost under bandwidth limit");
  }
}

void BM_CentralizedLogging(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  crypto::ChaCha20Rng rng(23);
  logm::WorkloadSpec spec;
  spec.records = batch;
  auto records = logm::generate_workload(spec, rng);
  for (auto _ : state) {
    baseline::CentralizedAuditor auditor(logm::paper_schema());
    for (const auto& rec : records) auditor.log(rec);
    benchmark::DoNotOptimize(auditor.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["msgs/record"] = 1;
}

}  // namespace

BENCHMARK(BM_DlaLogging)
    ->Unit(benchmark::kMillisecond)
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({6, 64})
    ->Args({8, 64})
    ->Args({4, 256});

// range(0)/100 = bytes/us: 0.1 B/us (~0.8 Mbps), 1 B/us, 10 B/us (~80 Mbps).
BENCHMARK(BM_DlaLoggingBandwidthLimited)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000);

BENCHMARK(BM_CentralizedLogging)->Unit(benchmark::kMillisecond)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
