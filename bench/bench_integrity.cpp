// E5 — distributed integrity checking (Section 4.1): the one-way
// accumulator circulation against the conventional per-fragment RSA
// signature baseline [26].
//
// Expected shape: accumulator *verification* of one record costs n modexps
// with SHA-sized exponents (one per hop) and n ring messages, with no
// private key anywhere; the signature baseline pays one RSA private-key
// signature per fragment at write time (d ~ modulus-sized exponent, much
// slower) plus one public-key verification per fragment at check time.
// The accumulator wins on the write path and stays competitive on the
// verify path while never revealing fragments between nodes.
#include <benchmark/benchmark.h>

#include "audit/cluster.hpp"
#include "baseline/signature_integrity.hpp"
#include "crypto/accumulator.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

std::vector<logm::LogRecord> workload(std::size_t records) {
  crypto::ChaCha20Rng rng(17);
  logm::WorkloadSpec spec;
  spec.records = records;
  return logm::generate_workload(spec, rng);
}

// Write-path cost: fold all fragments of each record into the accumulator.
void BM_AccumulatorWrite(benchmark::State& state) {
  const std::size_t n_nodes = static_cast<std::size_t>(state.range(0));
  auto partition =
      logm::AttributePartition::round_robin(logm::paper_schema(), n_nodes);
  auto records = workload(16);
  auto params = crypto::Accumulator::Params::fixed256();
  for (auto _ : state) {
    for (const auto& rec : records) {
      crypto::Accumulator acc(params);
      for (const auto& frag : partition.fragment(rec)) {
        acc.add(frag.canonical());
      }
      benchmark::DoNotOptimize(acc.value());
    }
  }
  state.counters["nodes"] = static_cast<double>(n_nodes);
  state.counters["records"] = 16;
}

void BM_SignatureWrite(benchmark::State& state) {
  const std::size_t n_nodes = static_cast<std::size_t>(state.range(0));
  auto partition =
      logm::AttributePartition::round_robin(logm::paper_schema(), n_nodes);
  auto records = workload(16);
  crypto::RsaKeyPair key = crypto::RsaKeyPair::fixed512();
  for (auto _ : state) {
    baseline::SignatureIntegrity integrity(key);
    for (const auto& rec : records) {
      auto frags = partition.fragment(rec);
      for (std::size_t i = 0; i < frags.size(); ++i) {
        integrity.sign_fragment(i, frags[i]);
      }
    }
  }
  state.counters["nodes"] = static_cast<double>(n_nodes);
  state.counters["records"] = 16;
}

// Verify path: the distributed circulation over the live cluster vs
// signature verification of all fragments.
void BM_AccumulatorVerifyDistributed(benchmark::State& state) {
  const std::size_t n_nodes = static_cast<std::size_t>(state.range(0));
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), n_nodes, 1,
      logm::AttributePartition::round_robin(logm::paper_schema(), n_nodes),
      /*seed=*/5, /*auditor_users=*/true});
  std::vector<logm::Glsn> glsns;
  for (const auto& rec : workload(16)) {
    cluster.user(0).log_record(cluster.sim(), rec.attrs,
                               [&](std::optional<logm::Glsn> g) {
                                 if (g) glsns.push_back(*g);
                               });
  }
  cluster.run();
  bool ok = false;
  cluster.dla(0).on_integrity_result =
      [&](audit::SessionId, logm::Glsn, bool result) { ok = result; };
  audit::SessionId session = 1;
  cluster.sim().reset_stats();
  for (auto _ : state) {
    for (logm::Glsn g : glsns) {
      cluster.dla(0).start_integrity_check(cluster.sim(), session++, g);
      cluster.run();
    }
    if (!ok) {
      state.SkipWithError("integrity check failed on intact log");
      break;
    }
  }
  state.counters["nodes"] = static_cast<double>(n_nodes);
  state.counters["records"] = static_cast<double>(glsns.size());
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
}

void BM_SignatureVerify(benchmark::State& state) {
  const std::size_t n_nodes = static_cast<std::size_t>(state.range(0));
  auto partition =
      logm::AttributePartition::round_robin(logm::paper_schema(), n_nodes);
  auto records = workload(16);
  crypto::RsaKeyPair key = crypto::RsaKeyPair::fixed512();
  baseline::SignatureIntegrity integrity(key);
  std::vector<std::vector<logm::Fragment>> all_frags;
  for (const auto& rec : records) {
    all_frags.push_back(partition.fragment(rec));
    for (std::size_t i = 0; i < all_frags.back().size(); ++i) {
      integrity.sign_fragment(i, all_frags.back()[i]);
    }
  }
  for (auto _ : state) {
    for (const auto& frags : all_frags) {
      if (!integrity.verify_all(frags)) {
        state.SkipWithError("signature verification failed");
        return;
      }
    }
  }
  state.counters["nodes"] = static_cast<double>(n_nodes);
  state.counters["records"] = static_cast<double>(records.size());
}

// Tamper-detection latency: how long until a corrupted fragment is caught.
void BM_AccumulatorTamperDetection(benchmark::State& state) {
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), 4, 1, logm::paper_partition(), /*seed=*/6,
      /*auditor_users=*/true});
  std::vector<logm::Glsn> glsns;
  for (const auto& rec : workload(8)) {
    cluster.user(0).log_record(cluster.sim(), rec.attrs,
                               [&](std::optional<logm::Glsn> g) {
                                 if (g) glsns.push_back(*g);
                               });
  }
  cluster.run();
  // Corrupt one fragment on P2.
  logm::Fragment bad = *cluster.dla(2).store().get(glsns[3]);
  bad.attrs["Tid"] = logm::Value("FORGED");
  cluster.dla(2).store().put(bad);
  bool detected = false;
  cluster.dla(0).on_integrity_result =
      [&](audit::SessionId, logm::Glsn, bool ok) { detected = !ok; };
  audit::SessionId session = 1;
  for (auto _ : state) {
    detected = false;
    cluster.dla(0).start_integrity_check(cluster.sim(), session++, glsns[3]);
    cluster.run();
    if (!detected) {
      state.SkipWithError("tampering went undetected");
      break;
    }
  }
  state.counters["detected"] = detected ? 1 : 0;
}

}  // namespace

BENCHMARK(BM_AccumulatorWrite)->Unit(benchmark::kMillisecond)->Arg(4)->Arg(8);
BENCHMARK(BM_SignatureWrite)->Unit(benchmark::kMillisecond)->Arg(4)->Arg(8);
BENCHMARK(BM_AccumulatorVerifyDistributed)
    ->Unit(benchmark::kMillisecond)
    ->Arg(4)
    ->Arg(8);
BENCHMARK(BM_SignatureVerify)->Unit(benchmark::kMillisecond)->Arg(4)->Arg(8);
BENCHMARK(BM_AccumulatorTamperDetection)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
