// E1 — regenerates the paper's worked-example artifacts from the library:
// Table 1 (global event log), Tables 2-5 (per-node fragments), Table 6
// (access control table), plus the Figure 4 secure-set-intersection example
// traced over the simulated cluster.
//
// This binary is a faithfulness check, not a timing benchmark: its output
// should be compared against the tables printed in the paper.
#include <iomanip>
#include <iostream>
#include <optional>

#include "audit/cluster.hpp"
#include "crypto/pohlig_hellman.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

void print_value(const logm::Value& v) {
  switch (v.type()) {
    case logm::ValueType::Int:
      std::cout << v.as_int();
      break;
    case logm::ValueType::Real:
      std::cout << std::fixed << std::setprecision(2) << v.as_real();
      break;
    case logm::ValueType::Text:
      std::cout << v.as_text();
      break;
  }
}

void print_row(logm::Glsn glsn, const std::map<std::string, logm::Value>& attrs,
               const std::vector<std::string>& columns) {
  std::cout << "  " << std::hex << glsn << std::dec;
  for (const auto& col : columns) {
    std::cout << " | ";
    auto it = attrs.find(col);
    if (it == attrs.end()) {
      std::cout << "-";
    } else {
      print_value(it->second);
    }
  }
  std::cout << "\n";
}

void print_header(const std::vector<std::string>& columns) {
  std::cout << "  glsn";
  for (const auto& col : columns) std::cout << " | " << col;
  std::cout << "\n";
}

}  // namespace

int main() {
  auto schema = logm::paper_schema();
  auto records = logm::paper_table1_records();
  auto partition = logm::paper_partition();

  std::cout << "TABLE 1 — GLOBAL EVENT LOG\n";
  std::vector<std::string> all_cols = {"Time", "id",  "protocl", "Tid",
                                       "C1",   "C2",  "C3"};
  print_header(all_cols);
  for (const auto& rec : records) print_row(rec.glsn, rec.attrs, all_cols);

  for (std::size_t node = 0; node < partition.node_count(); ++node) {
    std::cout << "\nTABLE " << 2 + node << " — EVENT LOG FRAGMENTS STORED IN P"
              << node << "\n";
    const auto& cols = partition.attributes_of(node);
    print_header(cols);
    for (const auto& rec : records) {
      auto frags = partition.fragment(rec);
      print_row(frags[node].glsn, frags[node].attrs, cols);
    }
  }

  // Table 6 via the real logging path: three tickets writing the records.
  std::cout << "\nTABLE 6 — ACCESS CONTROL TABLE (from the live cluster)\n";
  audit::Cluster cluster(audit::Cluster::Options{
      schema, 4, 3, partition, /*seed=*/1, /*auditor_users=*/false});
  // T1 writes rows 0 and 2; T2 rows 1 and 3; T3 row 4 (as in the paper).
  std::size_t owner_of_row[5] = {0, 1, 0, 1, 2};
  for (std::size_t i = 0; i < records.size(); ++i) {
    cluster.user(owner_of_row[i])
        .log_record(cluster.sim(), records[i].attrs,
                    [](std::optional<logm::Glsn>) {});
  }
  cluster.run();
  std::cout << "  Ticket ID | Type | glsn\n";
  for (const auto& entry : cluster.dla(0).acl().canonical_entries()) {
    std::cout << "  " << entry << "\n";
  }

  // Figure 4: the three-node secure set intersection example.
  std::cout << "\nFIGURE 4 — SECURE SET INTERSECTION {c,d,e} ^ {d,e,f} ^ "
               "{e,f,g}\n";
  const auto& domain = cluster.config()->ph_domain;
  std::map<std::string, std::string> names;
  auto encode = [&](std::initializer_list<const char*> items) {
    std::vector<bn::BigUInt> out;
    for (const char* s : items) {
      auto e = crypto::encode_element(domain, s);
      names[e.to_hex()] = s;
      out.push_back(e);
    }
    return out;
  };
  cluster.dla(0).stage_set_input(1, encode({"c", "d", "e"}));
  cluster.dla(1).stage_set_input(1, encode({"d", "e", "f"}));
  cluster.dla(2).stage_set_input(1, encode({"e", "f", "g"}));
  cluster.dla(0).on_set_result = [&](audit::SessionId,
                                     std::vector<bn::BigUInt> result) {
    std::cout << "  intersection decoded at P1:";
    for (const auto& e : result) std::cout << " '" << names[e.to_hex()] << "'";
    std::cout << "   (paper: {e})\n";
  };
  audit::SetSpec spec;
  spec.session = 1;
  spec.participants = {cluster.config()->dla_nodes[0],
                       cluster.config()->dla_nodes[1],
                       cluster.config()->dla_nodes[2]};
  spec.collector = cluster.config()->dla_nodes[0];
  spec.observers = {cluster.config()->dla_nodes[0]};
  cluster.sim().reset_stats();
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();
  std::cout << "  protocol cost: " << cluster.sim().stats().messages_sent
            << " messages, " << cluster.sim().stats().bytes_sent << " bytes\n";
  return 0;
}
