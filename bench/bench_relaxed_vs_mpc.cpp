// E4 — the paper's headline quantitative claim (Definition 1): relaxed
// secure computing with a blind TTP is *drastically* cheaper than classical
// secure multiparty computation.
//
// Measured head to head on the same logical operation:
//   * relaxed blind-TTP equality / max / rank (Sections 3.2-3.3): a few
//     field multiplications and 3-ish messages per party, zero modexps;
//   * classical GMW-style comparison with OT-backed AND gates: 3 AND gates
//     per bit, 2 OTs per AND, 3 RSA-512 modexps per OT — for 32-bit values
//     that is 576 modexps per single comparison.
//
// Expected shape: 3-5 orders of magnitude between the two, widening with
// bit width. Crossover: none — the relaxed primitive is always cheaper;
// the trade is the secondary information (order relations) the TTP sees.
#include <benchmark/benchmark.h>

#include "audit/cluster.hpp"
#include "baseline/gmw.hpp"
#include "crypto/pohlig_hellman.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

void BM_RelaxedEquality(benchmark::State& state) {
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), 2, 0, std::nullopt, /*seed=*/1, false});
  audit::SessionId session = 1;
  std::uint32_t outcome = 0;
  cluster.dla(0).on_cmp_result = [&](audit::SessionId, audit::CmpOpKind,
                                     std::uint32_t result) { outcome = result; };
  cluster.sim().reset_stats();
  for (auto _ : state) {
    cluster.dla(0).stage_cmp_input(session, bn::BigUInt(123456));
    cluster.dla(1).stage_cmp_input(session, bn::BigUInt(123456));
    audit::CmpSpec spec;
    spec.session = session++;
    spec.op = audit::CmpOpKind::Equality;
    spec.participants = cluster.config()->dla_nodes;
    spec.ttp = cluster.config()->ttp;
    spec.observers = {cluster.config()->dla_nodes[0]};
    cluster.dla(0).start_cmp(cluster.sim(), spec);
    cluster.run();
  }
  benchmark::DoNotOptimize(outcome);
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["modexps/op"] = 0;
}

void BM_RelaxedComparison(benchmark::State& state) {
  // Max over n parties (order-preserving transform, blind TTP).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), n, 0, std::nullopt, /*seed=*/2, false});
  audit::SessionId session = 1;
  cluster.sim().reset_stats();
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      cluster.dla(i).stage_cmp_input(session,
                                     bn::BigUInt((i * 7919 + 13) % 100000));
    }
    audit::CmpSpec spec;
    spec.session = session++;
    spec.op = audit::CmpOpKind::Max;
    spec.participants = cluster.config()->dla_nodes;
    spec.ttp = cluster.config()->ttp;
    spec.observers = {cluster.config()->dla_nodes[0]};
    cluster.dla(0).start_cmp(cluster.sim(), spec);
    cluster.run();
  }
  state.counters["parties"] = static_cast<double>(n);
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["modexps/op"] = 0;
}

void BM_EqualityViaSetIntersection(benchmark::State& state) {
  // Ablation (Section 3.2): the paper notes that equality can also be done
  // as a |S| = 1 secure set intersection — no TTP, but a full ring of
  // commutative encryptions. Middle ground between the blind-TTP transform
  // and classical MPC.
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), 2, 0, std::nullopt, /*seed=*/3, false});
  std::size_t matches = 0;
  cluster.dla(0).on_set_result =
      [&](audit::SessionId, std::vector<bn::BigUInt> r) { matches = r.size(); };
  audit::SessionId session = 1;
  cluster.sim().reset_stats();
  bn::BigUInt secret =
      crypto::encode_element(cluster.config()->ph_domain, "value-123456");
  for (auto _ : state) {
    cluster.dla(0).stage_set_input(session, {secret});
    cluster.dla(1).stage_set_input(session, {secret});
    audit::SetSpec spec;
    spec.session = session++;
    spec.op = audit::SetOp::Intersect;
    spec.participants = cluster.config()->dla_nodes;
    spec.collector = cluster.config()->dla_nodes[0];
    spec.observers = {cluster.config()->dla_nodes[0]};
    cluster.dla(0).start_set_protocol(cluster.sim(), spec);
    cluster.run();
  }
  if (matches != 1) state.SkipWithError("equality via intersection failed");
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["modexps/op"] = 6;  // 2 encrypt rings x2 + decrypt ring x2
}

void BM_SecureScalarProduct(benchmark::State& state) {
  // Du-Atallah with the blind TTP as commodity server — the relaxed-model
  // answer to the privacy-preserving data-mining toolbox of [20]. Cost per
  // dot product: O(d) field multiplications and 5 messages, no modexps.
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), 2, 0, std::nullopt, /*seed=*/4, false});
  audit::SessionId session = 1;
  bn::BigUInt result;
  cluster.dla(0).on_scalar_result = [&](audit::SessionId, bn::BigUInt v) {
    result = std::move(v);
  };
  cluster.sim().reset_stats();
  std::vector<bn::BigUInt> a(d), b(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = bn::BigUInt(i + 1);
    b[i] = bn::BigUInt(2 * i + 1);
  }
  for (auto _ : state) {
    cluster.dla(0).stage_vector_input(session, a);
    cluster.dla(1).stage_vector_input(session, b);
    cluster.dla(0).start_scalar_product(
        cluster.sim(), session++, cluster.config()->dla_nodes[0],
        cluster.config()->dla_nodes[1], static_cast<std::uint32_t>(d),
        {cluster.config()->dla_nodes[0]});
    cluster.run();
  }
  benchmark::DoNotOptimize(result);
  state.counters["dim"] = static_cast<double>(d);
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["modexps/op"] = 0;
}

void BM_ClassicalMpcComparison(benchmark::State& state) {
  // GMW greater-than with real EGL oblivious transfers (RSA-512).
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  crypto::RsaKeyPair key = crypto::RsaKeyPair::fixed512();
  baseline::GmwComparator cmp(key, bits, 7);
  bool out = false;
  for (auto _ : state) {
    out ^= cmp.greater_than(123456 & ((1ull << bits) - 1),
                            654321 & ((1ull << bits) - 1));
  }
  benchmark::DoNotOptimize(out);
  const auto& cost = cmp.cost();
  double iters = static_cast<double>(state.iterations());
  state.counters["bits"] = static_cast<double>(bits);
  state.counters["modexps/op"] = static_cast<double>(cost.modexps) / iters;
  state.counters["OTs/op"] =
      static_cast<double>(cost.ot_invocations) / iters;
  state.counters["msgs/op"] = static_cast<double>(cost.messages) / iters;
}

void BM_ClassicalMpcEquality(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  crypto::RsaKeyPair key = crypto::RsaKeyPair::fixed512();
  baseline::GmwComparator cmp(key, bits, 8);
  bool out = false;
  for (auto _ : state) {
    out ^= cmp.equals(123456 & ((1ull << bits) - 1),
                      123456 & ((1ull << bits) - 1));
  }
  benchmark::DoNotOptimize(out);
  double iters = static_cast<double>(state.iterations());
  state.counters["bits"] = static_cast<double>(bits);
  state.counters["modexps/op"] =
      static_cast<double>(cmp.cost().modexps) / iters;
}

}  // namespace

BENCHMARK(BM_RelaxedEquality)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EqualityViaSetIntersection)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SecureScalarProduct)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512);
BENCHMARK(BM_RelaxedComparison)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);
BENCHMARK(BM_ClassicalMpcComparison)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);
BENCHMARK(BM_ClassicalMpcEquality)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);

BENCHMARK_MAIN();
