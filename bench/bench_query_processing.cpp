// E6 — end-to-end confidential query processing (Figures 2-3) against the
// centralized auditor of Figure 1, over a generated e-commerce log.
//
// For each criterion in the suite the binary reports, side by side:
//   * DLA: wall time, simulated messages/bytes, and the Section 5
//     confidentiality metrics of the normalized query;
//   * centralized: wall time and logical messages (confidentiality 0 —
//     the auditor sees everything).
//
// Expected shape: the centralized model wins raw latency by a wide margin
// (no protocols, no crypto); the DLA model's cost scales with the number of
// cross subqueries, buying nonzero C_auditing/C_query. Results also carry a
// correctness cross-check: both engines must return identical glsn sets.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "audit/cluster.hpp"
#include "audit/local_query.hpp"
#include "audit/metrics.hpp"
#include "baseline/centralized.hpp"
#include "logm/storage_engine.hpp"
#include "logm/store.hpp"
#include "logm/workload.hpp"
#include "workload_gen.hpp"

using namespace dla;

namespace {

// Adaptive wall-clock measurement: grows the iteration count until the
// timed block runs at least `min_ms`, then reports ns per call.
template <class Fn>
double measure_ns(Fn&& fn, double min_ms) {
  fn();  // warmup
  std::size_t iters = 1;
  for (;;) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns >= min_ms * 1e6 || iters >= (std::size_t{1} << 22)) {
      return ns / static_cast<double>(iters);
    }
    iters *= 4;
  }
}

// Record-count scaling of the local query engine: indexed (columnar store +
// postings indexes + selectivity-ordered plan) vs the naive scan baseline
// (same store with indexing disabled). Emits BENCH_query.json with one entry
// per (criterion, records, engine) for the perf trajectory; both engines
// must return identical glsn sets on every criterion.
int run_store_scaling(bool smoke, std::ostringstream& json) {
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{300}
            : std::vector<std::size_t>{300, 3000, 30000};
  const double min_ms = smoke ? 2.0 : 50.0;
  const logm::Schema schema = logm::paper_schema();

  bool first_entry = true;
  int mismatches = 0;

  std::cout << "local query engine scaling — indexed vs scan baseline\n\n";
  std::cout << std::left << std::setw(44) << "criterion" << std::right
            << std::setw(8) << "records" << std::setw(7) << "hits"
            << std::setw(12) << "scan_ns" << std::setw(12) << "idx_ns"
            << std::setw(9) << "speedup" << std::setw(10) << "idx_rows"
            << std::setw(7) << "match" << "\n";

  std::size_t sink = 0;
  for (std::size_t records : sizes) {
    // Record stream, stores and criteria suite come from the shared
    // testkit helpers (tests/workload_gen.hpp) so the bench measures the
    // exact streams the tests pin.
    const auto recs = dla::testkit::make_records(2026 + records, records);
    logm::FragmentStore indexed = dla::testkit::make_store(recs);
    logm::FragmentStore scan =
        dla::testkit::make_store(recs, /*indexed=*/false);
    const auto [t_lo, t_hi] = dla::testkit::time_quantiles(recs);

    using Criterion = dla::testkit::ScalingCriterion;
    const std::vector<Criterion> suite = dla::testkit::scaling_suite(t_lo, t_hi);

    for (const Criterion& c : suite) {
      const audit::Expr expr = audit::parse(c.text, schema);

      const auto idx_hits = audit::eval_local_indexed(expr, indexed);
      const auto scan_hits = audit::eval_local_scan(expr, scan);
      const bool match = idx_hits == scan_hits;
      if (!match) ++mismatches;

      audit::reset_query_engine_counters();
      audit::eval_local_indexed(expr, indexed);
      const std::uint64_t idx_rows =
          audit::query_engine_counters().rows_scanned;
      audit::reset_query_engine_counters();
      audit::eval_local_scan(expr, scan);
      const std::uint64_t scan_rows =
          audit::query_engine_counters().rows_scanned;

      const double idx_ns = measure_ns(
          [&] { sink += audit::eval_local_indexed(expr, indexed).size(); },
          min_ms);
      const double scan_ns = measure_ns(
          [&] { sink += audit::eval_local_scan(expr, scan).size(); }, min_ms);
      const double speedup = idx_ns > 0.0 ? scan_ns / idx_ns : 0.0;

      std::cout << std::left << std::setw(44) << c.text << std::right
                << std::setw(8) << records << std::setw(7) << idx_hits.size()
                << std::setw(12) << std::fixed << std::setprecision(0)
                << scan_ns << std::setw(12) << idx_ns << std::setw(8)
                << std::setprecision(1) << speedup << "x" << std::setw(10)
                << idx_rows << std::setw(7) << (match ? "yes" : "NO")
                << "\n";

      for (int engine = 0; engine < 2; ++engine) {
        if (!first_entry) json << ",\n";
        first_entry = false;
        json << "  {\"criterion\": \"" << c.text << "\", \"kind\": \""
             << c.kind << "\", \"records\": " << records
             << ", \"engine\": \"" << (engine == 0 ? "indexed" : "scan")
             << "\", \"ns\": " << std::fixed << std::setprecision(1)
             << (engine == 0 ? idx_ns : scan_ns)
             << ", \"rows_scanned\": " << (engine == 0 ? idx_rows : scan_rows)
             << ", \"hits\": " << idx_hits.size() << ", \"match\": "
             << (match ? "true" : "false");
        if (engine == 0) {
          json << ", \"speedup\": " << std::setprecision(2) << speedup;
        }
        json << "}";
      }
    }
    std::cout << "\n";
  }
  std::cout << "store-scaling section done (sink=" << sink << ")\n\n";
  return mismatches;
}

// Storage-backend tier: the same query suite against the full engines —
// all-in-memory vs memory-mapped segments (docs/STORAGE.md) — at record
// counts past what the mirror-store section runs. Records stream through in
// chunks so the generator never holds the whole log; the segment backend is
// measured for ingest rate, post-ingest RSS and cold-open (reopen +
// validate) time, and every criterion must answer bit-identically across
// backends. Appends one JSON entry per backend to BENCH_query.json.
int run_backend_tier(std::size_t records, std::ostringstream& json_out) {
  namespace fs = std::filesystem;
  const logm::Schema schema = logm::paper_schema();
  const std::size_t chunk = std::min<std::size_t>(records, 65536);
  // Fixed-bound criteria (no workload quantiles needed): equality, range,
  // conjunction, IN-fan, and the non-indexable fallback that decodes every
  // row.
  const std::vector<std::string> suite = {
      "id = 'U3'",
      "protocl = 'TCP'",
      "C2 > 900.0",
      "id = 'U3' AND C2 > 500.0",
      "id IN ('U1', 'U3', 'U5')",
      "C1 < C2",
  };

  struct Run {
    double ingest_ms = 0.0;
    double rss_kb = 0.0;
    double cold_open_ms = 0.0;
    double query_ms_total = 0.0;
    std::vector<std::size_t> hits;
    std::vector<std::uint64_t> digests;
  };

  auto ingest = [&](logm::StorageEngine& eng) {
    crypto::ChaCha20Rng rng(4242);
    logm::Glsn next = 0x139aef78;
    std::size_t remaining = records;
    while (remaining > 0) {
      logm::WorkloadSpec spec;
      spec.records = std::min(chunk, remaining);
      auto recs = logm::generate_workload(spec, rng, next);
      next += recs.size();
      remaining -= recs.size();
      for (auto& rec : recs) {
        eng.put(logm::Fragment{rec.glsn, std::move(rec.attrs)});
      }
    }
  };
  auto fnv = [](const std::vector<logm::Glsn>& glsns) {
    std::uint64_t h = 1469598103934665603ull;
    for (logm::Glsn g : glsns) {
      h ^= g;
      h *= 1099511628211ull;
    }
    return h;
  };
  auto run_queries = [&](const logm::StorageEngine& eng, Run& run) {
    for (const std::string& text : suite) {
      const audit::Expr expr = audit::parse(text, schema);
      auto t0 = std::chrono::steady_clock::now();
      const auto got = audit::eval_engine_indexed(expr, eng);
      auto t1 = std::chrono::steady_clock::now();
      run.query_ms_total +=
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      run.hits.push_back(got.size());
      run.digests.push_back(fnv(got));
    }
  };

  // Segment backend first so the memory backend's retained heap cannot
  // distort the segment run's RSS delta.
  const fs::path dir =
      fs::temp_directory_path() /
      ("dla_bench_backend_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  Run seg_run;
  {
    logm::SegmentEngine::Options opts;
    opts.memtable_max_records = 65536;
    opts.sync_mode = logm::SegmentEngine::SyncMode::OnSeal;
    const std::size_t rss0 = dla::testkit::read_rss_kb();
    auto t0 = std::chrono::steady_clock::now();
    {
      logm::SegmentEngine eng(dir.string(), opts);
      ingest(eng);
      auto t1 = std::chrono::steady_clock::now();
      seg_run.ingest_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const std::size_t rss1 = dla::testkit::read_rss_kb();
      seg_run.rss_kb = rss1 > rss0 ? static_cast<double>(rss1 - rss0) : 0.0;
      run_queries(eng, seg_run);
    }
    auto t2 = std::chrono::steady_clock::now();
    logm::SegmentEngine reopened(dir.string(), opts);
    auto t3 = std::chrono::steady_clock::now();
    seg_run.cold_open_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    if (reopened.size() != records) {
      std::cerr << "FATAL: segment backend lost rows across reopen: "
                << reopened.size() << " != " << records << "\n";
      return 1;
    }
  }
  fs::remove_all(dir);

  Run mem_run;
  {
    logm::MemoryEngine eng;
    const std::size_t rss0 = dla::testkit::read_rss_kb();
    auto t0 = std::chrono::steady_clock::now();
    ingest(eng);
    auto t1 = std::chrono::steady_clock::now();
    mem_run.ingest_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const std::size_t rss1 = dla::testkit::read_rss_kb();
    mem_run.rss_kb = rss1 > rss0 ? static_cast<double>(rss1 - rss0) : 0.0;
    run_queries(eng, mem_run);
  }

  const bool match = seg_run.digests == mem_run.digests;
  std::cout << "storage backend tier — " << records << " records\n\n";
  std::cout << std::left << std::setw(10) << "backend" << std::right
            << std::setw(12) << "ingest_ms" << std::setw(12) << "rss_kb"
            << std::setw(14) << "cold_open_ms" << std::setw(12) << "query_ms"
            << std::setw(7) << "match" << "\n";
  for (int b = 0; b < 2; ++b) {
    const Run& run = b == 0 ? mem_run : seg_run;
    std::cout << std::left << std::setw(10)
              << (b == 0 ? "memory" : "segment") << std::right
              << std::setw(12) << std::fixed << std::setprecision(1)
              << run.ingest_ms << std::setw(12) << std::setprecision(0)
              << run.rss_kb << std::setw(14) << std::setprecision(1)
              << run.cold_open_ms << std::setw(12) << run.query_ms_total
              << std::setw(7) << (match ? "yes" : "NO") << "\n";
    json_out << ",\n  {\"section\": \"backend\", \"backend\": \""
             << (b == 0 ? "memory" : "segment")
             << "\", \"records\": " << records << ", \"ingest_ms\": "
             << std::fixed << std::setprecision(1) << run.ingest_ms
             << ", \"rss_kb\": " << std::setprecision(0) << run.rss_kb
             << ", \"cold_open_ms\": " << std::setprecision(2)
             << run.cold_open_ms << ", \"query_ms\": " << run.query_ms_total
             << ", \"match\": " << (match ? "true" : "false") << "}";
  }
  std::cout << "\n";

  if (!match) {
    std::cerr << "FATAL: backends diverged on the query suite\n";
    return 1;
  }
  // The bounded-RSS contract only means anything once the log dwarfs the
  // memtable: gate at the large tier, report below it.
  if (records >= 1000000 && mem_run.rss_kb > 0.0 &&
      seg_run.rss_kb > 0.25 * mem_run.rss_kb) {
    std::cerr << "FATAL: segment backend RSS " << seg_run.rss_kb
              << " KiB exceeds 25% of in-memory " << mem_run.rss_kb
              << " KiB\n";
    return 1;
  }
  return 0;
}

}  // namespace

int run_cluster_sections() {
  constexpr std::size_t kRecords = 300;
  crypto::ChaCha20Rng rng(2026);
  logm::WorkloadSpec wspec;
  wspec.records = kRecords;
  auto records = logm::generate_workload(wspec, rng);

  // DLA cluster ingestion.
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), 4, 1, logm::paper_partition(), /*seed=*/11,
      /*auditor_users=*/true});
  std::map<logm::Glsn, logm::Glsn> original_to_assigned;
  {
    std::size_t i = 0;
    for (const auto& rec : records) {
      logm::Glsn original = rec.glsn;
      cluster.user(0).log_record(cluster.sim(), rec.attrs,
                                 [&, original](std::optional<logm::Glsn> g) {
                                   if (g) original_to_assigned[original] = *g;
                                 });
      ++i;
    }
  }
  cluster.run();

  // Centralized baseline ingestion (full records, one trusted repository).
  baseline::CentralizedAuditor central(logm::paper_schema());
  for (const auto& rec : records) {
    logm::LogRecord assigned = rec;
    assigned.glsn = original_to_assigned.at(rec.glsn);
    central.log(assigned);
  }

  const char* suite[] = {
      "id = 'U3'",                                   // local, single node
      "id = 'U3' AND C2 > 500.0",                    // local conjunction
      "id = 'U3' AND protocl = 'TCP'",               // 2-node conjunction
      "Time > 1021234500 AND id = 'U1' AND C1 < 50", // 3-node conjunction
      "id = 'U2' OR protocl = 'UDP'",                // cross disjunction
      "C1 < C2",                                     // blind-TTP join
      "C1 < C2 AND Tid = 'T7'",                      // join + local
      "NOT (protocl = 'UDP' OR C1 >= 50)",           // normalization path
  };

  std::cout << "E6 — confidential query processing: DLA cluster vs "
               "centralized auditor ("
            << kRecords << " records)\n\n";
  std::cout << std::left << std::setw(46) << "criterion" << std::right
            << std::setw(6) << "hits" << std::setw(10) << "dla_ms"
            << std::setw(9) << "msgs" << std::setw(10) << "kbytes"
            << std::setw(9) << "cent_ms" << std::setw(8) << "C_aud"
            << std::setw(8) << "match" << "\n";

  for (const char* criterion : suite) {
    // DLA run.
    cluster.sim().reset_stats();
    std::optional<audit::QueryOutcome> outcome;
    auto t0 = std::chrono::steady_clock::now();
    cluster.user(0).query(cluster.sim(), criterion,
                          [&](audit::QueryOutcome o) { outcome = std::move(o); });
    cluster.run();
    auto t1 = std::chrono::steady_clock::now();
    double dla_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Centralized run.
    auto t2 = std::chrono::steady_clock::now();
    auto central_hits = central.query(criterion);
    auto t3 = std::chrono::steady_clock::now();
    double cent_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();

    auto sqs = audit::normalize(criterion, cluster.config()->schema,
                                cluster.config()->partition);
    bool match = outcome && outcome->ok && outcome->glsns == central_hits;

    std::cout << std::left << std::setw(46) << criterion << std::right
              << std::setw(6) << (outcome ? outcome->glsns.size() : 0)
              << std::setw(10) << std::fixed << std::setprecision(2) << dla_ms
              << std::setw(9) << cluster.sim().stats().messages_sent
              << std::setw(10) << std::setprecision(1)
              << cluster.sim().stats().bytes_sent / 1024.0 << std::setw(9)
              << std::setprecision(3) << cent_ms << std::setw(8)
              << std::setprecision(2) << audit::auditing_confidentiality(sqs)
              << std::setw(8) << (match ? "yes" : "NO") << "\n";
  }

  std::cout << "\ncentralized auditor confidentiality: C_store = 0 (full "
               "records at one party), C_auditing = 0 by construction.\n";

  // Ablation: threshold report certification on top of the same query —
  // the cost of a majority co-signature (2 extra rounds + Schnorr algebra).
  {
    audit::Cluster certified(audit::Cluster::Options{
        logm::paper_schema(), 4, 1, logm::paper_partition(), /*seed=*/11,
        /*auditor_users=*/true, /*certify_reports=*/true});
    for (const auto& rec : records) {
      certified.user(0).log_record(certified.sim(), rec.attrs,
                                   [](std::optional<logm::Glsn>) {});
    }
    certified.run();
    const char* q = "id = 'U3' AND protocl = 'TCP'";
    certified.sim().reset_stats();
    std::optional<audit::QueryOutcome> outcome;
    auto t0 = std::chrono::steady_clock::now();
    certified.user(0).query(certified.sim(), q,
                            [&](audit::QueryOutcome o) { outcome = std::move(o); });
    certified.run();
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "\nablation — same query with 3-of-4 certification: "
              << std::fixed << std::setprecision(2)
              << std::chrono::duration<double, std::milli>(t1 - t0).count()
              << " ms, " << certified.sim().stats().messages_sent
              << " msgs, certified="
              << (outcome && outcome->certified ? "yes" : "no") << "\n";
  }

  // Aggregate queries (the abstract's headline capability): the auditor
  // learns one number; per-record values never leave the attribute owner.
  std::cout << "\nconfidential aggregates over the same workload:\n";
  struct AggCase {
    const char* criterion;
    audit::AggOp op;
    const char* attr;
  } agg_suite[] = {
      {"protocl = 'UDP'", audit::AggOp::Count, ""},
      {"protocl = 'UDP'", audit::AggOp::Sum, "C2"},
      {"id = 'U1' AND protocl = 'TCP'", audit::AggOp::Avg, "C2"},
      {"Time > 1021234500", audit::AggOp::Max, "C1"},
  };
  for (const auto& c : agg_suite) {
    cluster.sim().reset_stats();
    std::optional<audit::AggregateOutcome> agg;
    auto t0 = std::chrono::steady_clock::now();
    cluster.user(0).aggregate_query(
        cluster.sim(), c.criterion, c.op, c.attr,
        [&](audit::AggregateOutcome o) { agg = std::move(o); });
    cluster.run();
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::cout << "  " << audit::to_string(c.op) << "(" << c.attr << ") WHERE "
              << std::left << std::setw(32) << c.criterion << std::right;
    if (agg && agg->ok) {
      std::cout << " = " << std::setprecision(4) << agg->value << "  ("
                << agg->count << " records, " << std::setprecision(2) << ms
                << " ms, " << cluster.sim().stats().messages_sent
                << " msgs)\n";
    } else {
      std::cout << " error: " << (agg ? agg->error : "no reply") << "\n";
    }
  }
  return 0;
}

// `--smoke` runs the store-scaling section at its tier1-safe size plus a
// small backend tier (the `bench`-labelled ctest entry); the full run adds
// a 100k-record backend tier, the cluster-vs-centralized comparison,
// certification ablation and aggregate suite. `--large` raises the backend
// tier to 3M records (the bounded-RSS demonstration; gates segment RSS at
// 25% of the in-memory backend); `--records N` sets it explicitly.
int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_query.json";
  std::size_t backend_records = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--large") == 0) backend_records = 3000000;
    if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      backend_records = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (backend_records == 0) backend_records = smoke ? 2000 : 100000;

  std::ostringstream json;
  json << "[\n";
  const int mismatches = run_store_scaling(smoke, json);
  if (mismatches != 0) {
    std::cerr << "FATAL: " << mismatches
              << " criteria diverged between indexed and scan engines\n";
    return 1;
  }
  const int backend_rc = run_backend_tier(backend_records, json);
  json << "\n]\n";
  std::ofstream out(json_path);
  out << json.str();
  std::cout << "wrote " << json_path << "\n";
  if (backend_rc != 0) return backend_rc;
  if (smoke) return 0;
  return run_cluster_sections();
}
