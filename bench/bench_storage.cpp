// Storage-engine lifecycle benchmark: ingest -> WAL -> seal -> tiered
// compaction -> reopen, on the memory-mapped columnar segment backend
// (docs/STORAGE.md). Reports throughput (ingest/seal/compact rates, cold
// reopen) into BENCH_storage.json, and gates a set of *structural* metrics
// against the checked-in baseline bench/storage_baseline.txt: visible rows,
// segments sealed, compactions run, WAL frames replayed at reopen, and the
// FNV digest of a fixed query suite across {memtable + segments}. The
// structural rows are fully deterministic (seeded workload, fixed
// thresholds, virtual of wall-clock nothing), so the gate is exact-match:
// any drift is a storage regression, not noise. Timing rows are reported
// but only ratio-gated when --gate-throughput is passed (sanitizer CI runs
// would false-fail a wall-clock gate).
//
//   bench_storage [--records N] [--baseline PATH] [--write-baseline]
//                 [--gate-throughput] [--json PATH]
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "audit/local_query.hpp"
#include "audit/metrics.hpp"
#include "logm/storage_engine.hpp"
#include "logm/workload.hpp"
#include "workload_gen.hpp"

using namespace dla;

namespace {

namespace fs = std::filesystem;

struct Metrics {
  // Structural (exact-gated).
  std::map<std::string, std::uint64_t> structural;
  // Throughput (reported; ratio-gated only with --gate-throughput).
  std::map<std::string, double> timing;
};

std::uint64_t fnv(const std::vector<logm::Glsn>& glsns) {
  std::uint64_t h = 1469598103934665603ull;
  for (logm::Glsn g : glsns) {
    h ^= g;
    h *= 1099511628211ull;
  }
  return h;
}

Metrics run(std::size_t records, const fs::path& dir) {
  Metrics m;
  const logm::Schema schema = logm::paper_schema();
  logm::SegmentEngine::Options opts;
  opts.memtable_max_records = 1024;
  opts.compaction_fanout = 4;
  opts.sync_mode = logm::SegmentEngine::SyncMode::OnSeal;

  logm::reset_storage_stats();
  fs::remove_all(dir);

  // Ingest: a churny deterministic stream — every 7th record overwrites an
  // earlier glsn and every 11th deletes one, so seals carry tombstones and
  // compaction exercises newest-wins merging.
  crypto::ChaCha20Rng rng(929);
  logm::WorkloadSpec spec;
  spec.records = records;
  auto recs = logm::generate_workload(spec, rng, /*first_glsn=*/1);
  double ingest_ms = 0.0;
  std::size_t deletes = 0;
  {
    logm::SegmentEngine eng(dir.string(), opts);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < recs.size(); ++i) {
      eng.put(logm::Fragment{recs[i].glsn, recs[i].attrs});
      if (i % 7 == 3 && i > 14) {
        logm::Fragment again{recs[i - 14].glsn, recs[i].attrs};
        eng.put(std::move(again));
      }
      if (i % 11 == 5 && i > 22) {
        if (eng.erase(recs[i - 22].glsn)) ++deletes;
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    ingest_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Force the tail out and compact to a steady state.
    auto t2 = std::chrono::steady_clock::now();
    eng.seal();
    eng.compact();
    auto t3 = std::chrono::steady_clock::now();
    m.timing["final_seal_compact_ms"] =
        std::chrono::duration<double, std::milli>(t3 - t2).count();

    m.structural["visible_rows"] = eng.size();
    m.structural["segments_live"] = eng.segments().size();
    m.structural["deletes_applied"] = deletes;
    const logm::StorageStats& st = logm::storage_stats();
    m.structural["segments_sealed"] = st.segments_sealed;
    m.structural["segment_compactions"] = st.segment_compactions;

    // Fixed query suite across memtable + segments; digest pins both the
    // planner and the visibility rules.
    const std::vector<std::string> suite = {
        "id = 'U3'",
        "C2 > 900.0",
        "id = 'U1' AND C2 > 500.0",
        "id IN ('U2', 'U4', 'U6')",
        "C1 < C2",
    };
    auto tq0 = std::chrono::steady_clock::now();
    std::uint64_t digest = 1469598103934665603ull;
    std::uint64_t hits = 0;
    for (const std::string& text : suite) {
      const audit::Expr expr = audit::parse(text, schema);
      const auto got = audit::eval_engine_indexed(expr, eng);
      hits += got.size();
      digest ^= fnv(got);
      digest *= 1099511628211ull;
    }
    auto tq1 = std::chrono::steady_clock::now();
    m.timing["query_suite_ms"] =
        std::chrono::duration<double, std::milli>(tq1 - tq0).count();
    m.structural["query_hits"] = hits;
    m.structural["query_digest"] = digest;

    // Differential oracle: the scan over the same engine must agree.
    std::uint64_t scan_digest = 1469598103934665603ull;
    for (const std::string& text : suite) {
      const audit::Expr expr = audit::parse(text, schema);
      scan_digest ^= fnv(audit::eval_engine_scan(expr, eng));
      scan_digest *= 1099511628211ull;
    }
    m.structural["scan_matches_indexed"] = scan_digest == digest ? 1 : 0;
  }
  m.timing["ingest_krecs_per_s"] =
      ingest_ms > 0.0 ? static_cast<double>(records) / ingest_ms : 0.0;

  // Cold reopen: manifest load + full segment validation + WAL replay.
  logm::reset_storage_stats();
  auto t0 = std::chrono::steady_clock::now();
  logm::SegmentEngine reopened(dir.string(), opts);
  auto t1 = std::chrono::steady_clock::now();
  m.timing["cold_open_ms"] =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.structural["reopened_rows"] = reopened.size();
  m.structural["wal_frames_replayed"] =
      logm::storage_stats().wal_frames_replayed;
  return m;
}

// Values stay textual so 64-bit digests round-trip exactly (a double-typed
// baseline would silently truncate them).
std::map<std::string, std::string> load_baseline(const std::string& path) {
  std::map<std::string, std::string> out;
  std::ifstream in(path);
  std::string key, value;
  while (in >> key >> value) out[key] = value;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t records = 20000;
  std::string baseline_path;
  std::string json_path = "BENCH_storage.json";
  bool write_baseline = false;
  bool gate_throughput = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--write-baseline") == 0) write_baseline = true;
    if (std::strcmp(argv[i], "--gate-throughput") == 0) gate_throughput = true;
  }

  const fs::path dir = fs::temp_directory_path() /
                       ("dla_bench_storage_" + std::to_string(::getpid()));
  Metrics m = run(records, dir);
  std::error_code ec;
  fs::remove_all(dir, ec);

  std::cout << "segment storage lifecycle — " << records << " records\n\n";
  for (const auto& [key, value] : m.structural) {
    std::cout << "  " << std::left << std::setw(26) << key << " " << value
              << "\n";
  }
  for (const auto& [key, value] : m.timing) {
    std::cout << "  " << std::left << std::setw(26) << key << " "
              << std::fixed << std::setprecision(2) << value << "\n";
  }

  std::ostringstream json;
  json << "{\n  \"records\": " << records;
  for (const auto& [key, value] : m.structural) {
    json << ",\n  \"" << key << "\": " << value;
  }
  for (const auto& [key, value] : m.timing) {
    json << ",\n  \"" << key << "\": " << std::fixed << std::setprecision(3)
         << value;
  }
  json << "\n}\n";
  std::ofstream(json_path) << json.str();
  std::cout << "\nwrote " << json_path << "\n";

  if (m.structural["scan_matches_indexed"] != 1) {
    std::cerr << "FATAL: segment-indexed and scan paths diverged\n";
    return 1;
  }

  if (baseline_path.empty()) return 0;
  if (write_baseline) {
    std::ofstream out(baseline_path);
    out << "records " << records << "\n";
    for (const auto& [key, value] : m.structural) {
      out << key << " " << value << "\n";
    }
    for (const auto& [key, value] : m.timing) {
      out << "throughput." << key << " " << std::fixed << std::setprecision(3)
          << value << "\n";
    }
    std::cout << "wrote baseline " << baseline_path << "\n";
    return 0;
  }

  const auto baseline = load_baseline(baseline_path);
  if (baseline.empty()) {
    std::cerr << "FATAL: baseline " << baseline_path
              << " missing or empty (regenerate with --write-baseline)\n";
    return 1;
  }
  int failures = 0;
  if (auto it = baseline.find("records");
      it != baseline.end() && std::stoull(it->second) != records) {
    std::cerr << "FATAL: baseline was recorded at " << it->second
              << " records, run uses " << records << "\n";
    return 1;
  }
  for (const auto& [key, value] : m.structural) {
    auto it = baseline.find(key);
    if (it == baseline.end()) continue;  // new metric: baseline predates it
    if (std::stoull(it->second) != value) {
      std::cerr << "REGRESSION: " << key << " = " << value << ", baseline "
                << it->second << "\n";
      ++failures;
    }
  }
  if (gate_throughput) {
    for (const auto& [key, value] : m.timing) {
      auto it = baseline.find("throughput." + key);
      if (it == baseline.end()) continue;
      const double base = std::stod(it->second);
      if (base <= 0.0) continue;
      // Rates must not collapse below 1/3 of baseline; latencies must not
      // exceed 3x. Key names ending in _per_s are rates.
      const bool rate = key.size() > 6 &&
                        key.compare(key.size() - 6, 6, "_per_s") == 0;
      const bool bad = rate ? value < base / 3.0 : value > base * 3.0;
      if (bad) {
        std::cerr << "REGRESSION: throughput." << key << " = " << value
                  << ", baseline " << base << "\n";
        ++failures;
      }
    }
  }
  if (failures != 0) {
    std::cerr << failures << " storage baseline regression(s)\n";
    return 1;
  }
  std::cout << "baseline check passed (" << baseline.size() << " entries)\n";
  return 0;
}
