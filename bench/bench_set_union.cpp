// E10 — secure set union (Section 3.4) over party count and overlap ratio.
//
// Expected shape: same modexp-dominated cost as intersection (the ring pass
// is identical); the decrypt phase grows with the size of the union, so low
// overlap (bigger unions) costs more than high overlap.
#include <benchmark/benchmark.h>

#include "audit/cluster.hpp"
#include "audit/metrics.hpp"
#include "crypto/pohlig_hellman.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

std::vector<std::vector<std::string>> make_sets(std::size_t n,
                                                std::size_t size,
                                                double overlap) {
  // `overlap` of each set is drawn from a shared pool; the rest is unique.
  std::vector<std::vector<std::string>> sets(n);
  auto shared_count = static_cast<std::size_t>(overlap * size);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      sets[i].push_back(j < shared_count
                            ? "pool-" + std::to_string(j)
                            : "uniq-" + std::to_string(i) + "-" +
                                  std::to_string(j));
    }
  }
  return sets;
}

// range(3) = ring chunk size (0 = legacy monolithic frames); range(4) =
// link bandwidth in bytes per simulated us (0 = latency model only). The
// pipelined-vs-monolithic contrast shows up in the deterministic sim_ms/op
// counter; wall time stays modexp-dominated.
void BM_SecureSetUnion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  const double overlap = static_cast<double>(state.range(2)) / 100.0;
  const std::size_t chunk = static_cast<std::size_t>(state.range(3));
  const double bandwidth = static_cast<double>(state.range(4));
  auto sets = make_sets(n, size, overlap);
  audit::Cluster::Options opts{
      logm::paper_schema(), std::max<std::size_t>(n, 2), 0, std::nullopt,
      /*seed=*/3, false};
  opts.set_chunk_size = chunk;
  audit::Cluster cluster(std::move(opts));
  cluster.sim().set_link_bandwidth(bandwidth);
  std::size_t union_size = 0;
  cluster.dla(0).on_set_result =
      [&](audit::SessionId, std::vector<bn::BigUInt> r) {
        union_size = r.size();
      };
  audit::SessionId session = 1;
  cluster.sim().reset_stats();
  audit::reset_crypto_op_counters();
  net::SimTime sim_elapsed = 0;
  for (auto _ : state) {
    net::SimTime t0 = cluster.sim().now();
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<bn::BigUInt> elements;
      for (const auto& s : sets[i]) {
        elements.push_back(
            crypto::encode_element(cluster.config()->ph_domain, s));
      }
      cluster.dla(i).stage_set_input(session, std::move(elements));
    }
    audit::SetSpec spec;
    spec.session = session++;
    spec.op = audit::SetOp::Union;
    for (std::size_t i = 0; i < n; ++i) {
      spec.participants.push_back(cluster.config()->dla_nodes[i]);
    }
    spec.collector = spec.participants[0];
    spec.observers = {spec.participants[0]};
    cluster.dla(0).start_set_protocol(cluster.sim(), spec);
    cluster.run();
    sim_elapsed += cluster.sim().now() - t0;
  }
  state.counters["parties"] = static_cast<double>(n);
  state.counters["set_size"] = static_cast<double>(size);
  state.counters["overlap_pct"] = static_cast<double>(state.range(2));
  state.counters["chunk"] = static_cast<double>(chunk);
  state.counters["union_size"] = static_cast<double>(union_size);
  state.counters["sim_ms/op"] = benchmark::Counter(
      static_cast<double>(sim_elapsed) / 1000.0,
      benchmark::Counter::kAvgIterations);
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  audit::CryptoOpCounters ops = audit::crypto_op_counters();
  state.counters["modexp/op"] = benchmark::Counter(
      static_cast<double>(ops.modexp_count), benchmark::Counter::kAvgIterations);
  state.counters["batches/op"] = benchmark::Counter(
      static_cast<double>(ops.modexp_batch_count),
      benchmark::Counter::kAvgIterations);
  state.counters["elem/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n * size),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SecureSetUnion)
    ->Unit(benchmark::kMillisecond)
    ->Args({3, 16, 0, 64, 0})
    ->Args({3, 16, 50, 64, 0})
    ->Args({3, 16, 100, 64, 0})
    ->Args({3, 64, 50, 64, 0})
    ->Args({3, 1024, 50, 64, 0})
    ->Args({5, 32, 50, 64, 0})
    ->Args({9, 32, 50, 64, 0})
    // Pipelined vs monolithic under a bandwidth-bound link model: compare
    // the deterministic sim_ms/op counter between these rows.
    ->Args({3, 128, 50, 0, 2})
    ->Args({3, 128, 50, 16, 2});

BENCHMARK_MAIN();
