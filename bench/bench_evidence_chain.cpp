// E8 — evidence-chain membership (Figures 6-7): join handshake throughput,
// full-chain verification cost vs chain length, and double-invite
// detection over pooled branches.
//
// Expected shape: joins are constant-cost (one blind signature + one RSA
// signature + 3 messages); verification is linear in chain length with two
// RSA verifications per piece; detection is linear in the pooled piece
// count with no crypto at all (hash map over (issuer, predecessor)).
#include <benchmark/benchmark.h>

#include <memory>

#include "audit/cluster.hpp"
#include "audit/member_node.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

struct ChainRig {
  explicit ChainRig(std::size_t members)
      : ca("CA", crypto::RsaKeyPair::fixed512()) {
    ca_id = sim.add_node(ca);
    for (std::size_t i = 0; i < members; ++i) {
      nodes.push_back(std::make_unique<audit::MemberNode>(
          "P" + std::to_string(i), 500 + i));
      sim.add_node(*nodes.back());
      nodes.back()->acquire_token(sim, ca_id, ca.public_key(), nullptr);
    }
    sim.run();
    nodes[0]->found_chain("genesis");
    for (std::size_t i = 0; i + 1 < members; ++i) {
      nodes[i]->invite(sim, nodes[i + 1]->id(), "t" + std::to_string(i));
      sim.run();
    }
  }

  net::Simulator sim;
  audit::CaNode ca;
  net::NodeId ca_id;
  std::vector<std::unique_ptr<audit::MemberNode>> nodes;
};

void BM_JoinHandshake(benchmark::State& state) {
  // Cost of one complete token + PP/SC/RE join, amortised over a growing
  // chain rebuilt per iteration batch.
  for (auto _ : state) {
    state.PauseTiming();
    net::Simulator sim;
    audit::CaNode ca("CA", crypto::RsaKeyPair::fixed512());
    net::NodeId ca_id = sim.add_node(ca);
    audit::MemberNode founder("P0", 1);
    audit::MemberNode joiner("P1", 2);
    sim.add_node(founder);
    sim.add_node(joiner);
    founder.acquire_token(sim, ca_id, ca.public_key(), nullptr);
    joiner.acquire_token(sim, ca_id, ca.public_key(), nullptr);
    sim.run();
    founder.found_chain("genesis");
    state.ResumeTiming();

    founder.invite(sim, joiner.id(), "terms");
    sim.run();
    if (joiner.chain().size() != 2) {
      state.SkipWithError("join failed");
      break;
    }
  }
}

void BM_ChainVerification(benchmark::State& state) {
  const std::size_t members = static_cast<std::size_t>(state.range(0));
  ChainRig rig(members);
  const auto& chain = rig.nodes.back()->chain();
  if (chain.size() != members) {
    state.SkipWithError("chain construction failed");
    return;
  }
  for (auto _ : state) {
    auto v = chain.verify(rig.ca.public_key());
    if (!v.ok) {
      state.SkipWithError(("verification failed: " + v.failure).c_str());
      break;
    }
    benchmark::DoNotOptimize(v.checked);
  }
  state.counters["pieces"] = static_cast<double>(members);
}

void BM_DoubleInviteDetection(benchmark::State& state) {
  const std::size_t members = static_cast<std::size_t>(state.range(0));
  ChainRig rig(members);
  // Inject one fork in the middle and pool both branches.
  std::size_t cheater = members / 2;
  audit::MemberNode outsider("PX", 31337);
  rig.sim.add_node(outsider);
  outsider.acquire_token(rig.sim, rig.ca_id, rig.ca.public_key(), nullptr);
  rig.sim.run();
  rig.nodes[cheater]->set_allow_misconduct(true);
  rig.nodes[cheater]->invite(rig.sim, outsider.id(), "fork");
  rig.sim.run();

  std::vector<audit::EvidencePiece> pool;
  for (const auto& p : rig.nodes.back()->chain().pieces()) pool.push_back(p);
  for (const auto& p : outsider.chain().pieces()) pool.push_back(p);

  for (auto _ : state) {
    auto exposed = audit::detect_double_invite(pool);
    if (!exposed) {
      state.SkipWithError("fork not detected");
      break;
    }
    benchmark::DoNotOptimize(*exposed);
  }
  state.counters["pooled_pieces"] = static_cast<double>(pool.size());
}

}  // namespace

void BM_DistributedKeyGeneration(benchmark::State& state) {
  // Full Feldman-VSS DKG over the simulated cluster: n dealings, n^2 share
  // transfers, n^2 verifications. Control-plane cost, paid once per epoch.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    audit::Cluster cluster(audit::Cluster::Options{
        logm::paper_schema(), n, 0, std::nullopt, /*seed=*/8, false});
    std::size_t completed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      cluster.dla(i).on_dkg_result =
          [&](audit::SessionId, const audit::DlaNode::DkgResult& r) {
            completed += r.ok;
          };
    }
    state.ResumeTiming();
    cluster.dla(0).start_dkg(cluster.sim(), 1,
                             static_cast<std::uint32_t>(n / 2 + 1));
    cluster.run();
    if (completed != n) {
      state.SkipWithError("DKG failed");
      break;
    }
  }
  state.counters["nodes"] = static_cast<double>(n);
}

BENCHMARK(BM_DistributedKeyGeneration)
    ->Unit(benchmark::kMillisecond)
    ->Arg(4)
    ->Arg(8);
BENCHMARK(BM_JoinHandshake)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainVerification)
    ->Unit(benchmark::kMillisecond)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK(BM_DoubleInviteDetection)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(8)
    ->Arg(32);

BENCHMARK_MAIN();
