// E3 — secure sum (Section 3.5): Shamir-sharing cost across cluster sizes
// and thresholds, the weighted variant, and the plaintext floor.
//
// Expected shape: the protocol exchanges n^2 share messages plus k
// evaluations; field arithmetic is over a 128-bit prime, so absolute cost
// stays small — the paper's point that the *relaxed* statistics primitives
// are practical, unlike circuit-based MPC (see bench_relaxed_vs_mpc).
#include <benchmark/benchmark.h>

#include "audit/cluster.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

void BM_SecureSum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const bool weighted = state.range(2) != 0;
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), n, 0, std::nullopt, /*seed=*/1, false});
  bn::BigUInt result;
  cluster.dla(0).on_sum_result = [&](audit::SessionId, bn::BigUInt v) {
    result = std::move(v);
  };
  audit::SessionId session = 1;
  cluster.sim().reset_stats();
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected += (weighted ? (i % 3 + 1) : 1) * (1000 + i);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      cluster.dla(i).stage_sum_input(session,
                                     bn::BigUInt(1000 + static_cast<std::uint64_t>(i)));
    }
    audit::SumSpec spec;
    spec.session = session++;
    spec.participants = cluster.config()->dla_nodes;
    spec.threshold_k = static_cast<std::uint32_t>(k);
    spec.collector = cluster.config()->dla_nodes[0];
    spec.observers = {cluster.config()->dla_nodes[0]};
    if (weighted) {
      for (std::size_t i = 0; i < n; ++i) {
        spec.weights.emplace_back(static_cast<std::uint64_t>(i % 3 + 1));
      }
    }
    cluster.dla(0).start_sum(cluster.sim(), spec);
    cluster.run();
    if (result != bn::BigUInt(expected)) {
      state.SkipWithError("secure sum returned a wrong total");
      break;
    }
  }
  state.counters["parties"] = static_cast<double>(n);
  state.counters["threshold"] = static_cast<double>(k);
  state.counters["weighted"] = weighted ? 1 : 0;
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["bytes/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().bytes_sent),
      benchmark::Counter::kAvgIterations);
}

void BM_PlaintextSum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = 1000 + i;
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (std::uint64_t v : values) total += v;
    benchmark::DoNotOptimize(total);
  }
  state.counters["parties"] = static_cast<double>(n);
}

}  // namespace

BENCHMARK(BM_SecureSum)
    ->Unit(benchmark::kMicrosecond)
    ->Args({3, 2, 0})
    ->Args({5, 3, 0})
    ->Args({9, 5, 0})
    ->Args({17, 9, 0})
    ->Args({33, 17, 0})
    ->Args({9, 5, 1});   // weighted variant

BENCHMARK(BM_PlaintextSum)->Arg(9)->Arg(33);

BENCHMARK_MAIN();
