// E7 — the Section 5 confidentiality metrics (Eqs. 10-13) swept over the
// design knobs the paper calls out:
//   * C_store vs the number of undefined attributes v and cluster size n,
//   * C_auditing over a spectrum of query shapes,
//   * C_DLA for whole (query-mix, log) workloads at several fragmentation
//     widths.
//
// Expected shape: C_store grows linearly in v and in the covering node
// count u (saturating at u = min(n, w)); C_auditing rises with the fraction
// of cross predicates; C_DLA therefore improves as the same attributes are
// spread across more DLA nodes — the quantitative argument for the cluster
// TTP architecture.
#include <iomanip>
#include <iostream>

#include "audit/metrics.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

logm::Schema make_schema(std::size_t w, std::size_t v) {
  std::vector<logm::AttributeDef> defs;
  for (std::size_t i = 0; i < w; ++i) {
    defs.push_back({"a" + std::to_string(i), logm::ValueType::Int, i < v});
  }
  return logm::Schema(defs);
}

logm::LogRecord full_record(const logm::Schema& schema) {
  logm::LogRecord rec;
  rec.glsn = 1;
  for (const auto& def : schema.attributes()) {
    rec.attrs.emplace(def.name, logm::Value(std::int64_t{1}));
  }
  return rec;
}

}  // namespace

int main() {
  std::cout << "E7 — confidentiality metrics (paper Section 5)\n\n";

  // --- C_store = v*u/w over v and n (w = 8) -----------------------------
  std::cout << "C_store(Log) = v*u/w for w = 8 attributes:\n";
  std::cout << "  v\\n ";
  for (std::size_t n : {1, 2, 4, 8, 16}) std::cout << std::setw(7) << n;
  std::cout << "\n";
  for (std::size_t v : {0, 2, 4, 6, 8}) {
    std::cout << "  " << std::setw(3) << v << " ";
    for (std::size_t n : {1, 2, 4, 8, 16}) {
      auto schema = make_schema(8, v);
      auto partition = logm::AttributePartition::round_robin(schema, n);
      double c = audit::store_confidentiality(full_record(schema), schema,
                                              partition);
      std::cout << std::setw(7) << std::fixed << std::setprecision(2) << c;
    }
    std::cout << "\n";
  }

  // --- C_auditing over query shapes (paper schema, 4-node partition) ----
  auto schema = logm::paper_schema();
  auto partition = logm::paper_partition();
  std::cout << "\nC_auditing(Q) = (t+q)/(s+q) on the Tables 2-5 partition:\n";
  const char* queries[] = {
      "C1 = 5",                                        // 1 local pred
      "id = 'U1' AND C2 > 1.0",                        // 2 local subqueries
      "Time > 1 AND id = 'U1'",                        // 2 local SQs, 2 nodes
      "Time > 1 OR id = 'U1'",                         // 1 cross SQ
      "C1 = 5 AND (Time > 1 OR id = 'U1')",            // mixed
      "(Time > 1 OR id = 'U1') AND (Tid = 'T1' OR C1 < 9)",  // 2 cross SQs
      "C1 < C2",                                       // cross join pred
  };
  for (const char* q : queries) {
    auto sqs = audit::normalize(q, schema, partition);
    std::size_t cross = 0;
    for (const auto& sq : sqs) cross += sq.local() ? 0 : 1;
    std::cout << "  " << std::left << std::setw(52) << q << std::right
              << " q=" << sqs.size() << " cross_SQs=" << cross
              << "  C_auditing=" << std::fixed << std::setprecision(3)
              << audit::auditing_confidentiality(sqs) << "\n";
  }

  // --- C_DLA over fragmentation width -----------------------------------
  std::cout << "\nC_DLA (mean C_query over a 40-query x 100-record workload) "
               "vs cluster size:\n";
  crypto::ChaCha20Rng rng(4);
  logm::WorkloadSpec wspec;
  wspec.records = 100;
  auto records = logm::generate_workload(wspec, rng);
  std::vector<std::string> mix;
  for (int i = 0; i < 10; ++i) {
    mix.push_back("C1 = " + std::to_string(i * 7));
    mix.push_back("id = 'U" + std::to_string(i % 3) + "' AND C2 > " +
                  std::to_string(i * 90) + ".0");
    mix.push_back("Time > 1021234" + std::to_string(100 + i) +
                  " OR protocl = 'TCP'");
    mix.push_back("C1 < C2 AND Tid = 'T" + std::to_string(i) + "'");
  }
  for (std::size_t n : {1, 2, 4, 7}) {
    auto part = logm::AttributePartition::round_robin(schema, n);
    std::vector<std::vector<audit::Subquery>> normalized;
    for (const auto& q : mix) {
      normalized.push_back(audit::normalize(q, schema, part));
    }
    double c = audit::dla_confidentiality(normalized, records, schema, part);
    std::cout << "  n = " << n << " DLA nodes: C_DLA = " << std::fixed
              << std::setprecision(4) << c << "\n";
  }
  std::cout << "\n(centralized baseline: one node stores everything -> u = 1 "
               "and every query is local -> C_DLA degenerates toward its "
               "floor)\n";
  return 0;
}
