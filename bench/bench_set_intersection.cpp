// E2 — secure set intersection (Figure 4) scaling: party count n, set size
// |S|, and Pohlig-Hellman prime width, against the plaintext intersection
// floor. Reported counters: simulated protocol messages and bytes.
//
// Expected shape (DESIGN.md): cost is dominated by n^2 * |S| modexps (each
// of the n circulating sets is encrypted by all n parties and decrypted
// once more), so runtime grows linearly in |S| for fixed n and roughly
// quadratically in n; the plaintext baseline is orders of magnitude below.
#include <benchmark/benchmark.h>

#include <set>

#include "audit/cluster.hpp"
#include "audit/metrics.hpp"
#include "crypto/modexp_engine.hpp"
#include "crypto/pohlig_hellman.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

// Builds per-node sets with ~50% pairwise overlap.
std::vector<std::vector<std::string>> make_sets(std::size_t n,
                                                std::size_t size) {
  std::vector<std::vector<std::string>> sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      bool shared = j < size / 2;
      sets[i].push_back(shared ? "shared-" + std::to_string(j)
                               : "own-" + std::to_string(i) + "-" +
                                     std::to_string(j));
    }
  }
  return sets;
}

void run_protocol(audit::Cluster& cluster, std::size_t n,
                  const std::vector<std::vector<std::string>>& sets,
                  audit::SessionId session) {
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::BigUInt> elements;
    for (const auto& s : sets[i]) {
      elements.push_back(
          crypto::encode_element(cluster.config()->ph_domain, s));
    }
    cluster.dla(i).stage_set_input(session, std::move(elements));
  }
  audit::SetSpec spec;
  spec.session = session;
  spec.op = audit::SetOp::Intersect;
  for (std::size_t i = 0; i < n; ++i) {
    spec.participants.push_back(cluster.config()->dla_nodes[i]);
  }
  spec.collector = spec.participants[0];
  spec.observers = {spec.participants[0]};
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();
}

void BM_SecureSetIntersection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  auto sets = make_sets(n, size);
  audit::Cluster cluster(audit::Cluster::Options{
      logm::paper_schema(), std::max<std::size_t>(n, 2), 0, std::nullopt,
      /*seed=*/1, false});
  std::size_t result_size = 0;
  cluster.dla(0).on_set_result =
      [&](audit::SessionId, std::vector<bn::BigUInt> r) {
        result_size = r.size();
      };
  audit::SessionId session = 1;
  cluster.sim().reset_stats();
  audit::reset_crypto_op_counters();
  for (auto _ : state) {
    run_protocol(cluster, n, sets, session++);
  }
  audit::CryptoOpCounters ops = audit::crypto_op_counters();
  state.counters["parties"] = static_cast<double>(n);
  state.counters["set_size"] = static_cast<double>(size);
  state.counters["result"] = static_cast<double>(result_size);
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["bytes/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().bytes_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["modexp/op"] = benchmark::Counter(
      static_cast<double>(ops.modexp_count), benchmark::Counter::kAvgIterations);
  state.counters["batches/op"] = benchmark::Counter(
      static_cast<double>(ops.modexp_batch_count),
      benchmark::Counter::kAvgIterations);
  // Element throughput of the whole protocol (n sets of `size` elements per
  // iteration): the before/after figure for the batched engine.
  state.counters["elem/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n * size),
      benchmark::Counter::kIsRate);
}

void BM_PlaintextIntersection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  auto sets = make_sets(n, size);
  for (auto _ : state) {
    std::set<std::string> acc(sets[0].begin(), sets[0].end());
    for (std::size_t i = 1; i < n; ++i) {
      std::set<std::string> next(sets[i].begin(), sets[i].end());
      std::set<std::string> merged;
      for (const auto& s : acc) {
        if (next.contains(s)) merged.insert(s);
      }
      acc = std::move(merged);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["parties"] = static_cast<double>(n);
  state.counters["set_size"] = static_cast<double>(size);
}

// Raw commutative-encryption throughput across prime widths: the knob that
// scales the whole protocol.
void BM_PohligHellmanEncrypt(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  crypto::ChaCha20Rng rng(5);
  crypto::PhDomain domain =
      bits == 256 ? crypto::PhDomain::fixed256()
                  : crypto::PhDomain::generate(rng, bits);
  crypto::PhKey key = crypto::PhKey::generate(domain, rng);
  bn::BigUInt m = crypto::encode_element(domain, "element");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.encrypt(m));
  }
  state.counters["prime_bits"] = static_cast<double>(bits);
  state.counters["elem/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

// Batched commutative encryption: one ring hop's worth of elements through
// PhKey::encrypt_batch. Contrast elem/s here against BM_PohligHellmanEncrypt
// (the serial path) for the engine's amortization + fan-out win.
void BM_PohligHellmanEncryptBatch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  crypto::ChaCha20Rng rng(5);
  crypto::PhDomain domain =
      bits == 256 ? crypto::PhDomain::fixed256()
                  : crypto::PhDomain::generate(rng, bits);
  crypto::PhKey key = crypto::PhKey::generate(domain, rng);
  std::vector<bn::BigUInt> base(count);
  for (std::size_t i = 0; i < count; ++i) {
    base[i] = crypto::encode_element(domain, "element-" + std::to_string(i));
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<bn::BigUInt> elements = base;
    state.ResumeTiming();
    key.encrypt_batch(elements);
    benchmark::DoNotOptimize(elements);
  }
  state.counters["prime_bits"] = static_cast<double>(bits);
  state.counters["batch"] = static_cast<double>(count);
  state.counters["threads"] =
      static_cast<double>(crypto::ModExpEngine::batch_threads());
  state.counters["elem/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * count),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SecureSetIntersection)
    ->Unit(benchmark::kMillisecond)
    ->Args({3, 8})
    ->Args({3, 32})
    ->Args({3, 128})
    ->Args({3, 1024})
    ->Args({5, 32})
    ->Args({9, 32})
    ->Args({13, 32});

BENCHMARK(BM_PlaintextIntersection)
    ->Args({3, 32})
    ->Args({9, 32})
    ->Args({3, 128});

BENCHMARK(BM_PohligHellmanEncrypt)->Arg(128)->Arg(256)->Arg(512);

BENCHMARK(BM_PohligHellmanEncryptBatch)
    ->Unit(benchmark::kMillisecond)
    ->Args({256, 128})
    ->Args({256, 1024})
    ->Args({512, 128});

BENCHMARK_MAIN();
