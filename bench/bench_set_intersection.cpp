// E2 — secure set intersection (Figure 4) scaling: party count n, set size
// |S|, and Pohlig-Hellman prime width, against the plaintext intersection
// floor. Reported counters: simulated protocol messages and bytes.
//
// Expected shape (DESIGN.md): cost is dominated by n^2 * |S| modexps (each
// of the n circulating sets is encrypted by all n parties and decrypted
// once more), so runtime grows linearly in |S| for fixed n and roughly
// quadratically in n; the plaintext baseline is orders of magnitude below.
// The `--ringpipe` mode bypasses Google Benchmark and measures SIMULATED
// ring latency (deterministic, from the discrete-event clock) of the legacy
// monolithic ring vs the chunked pipelined ring under a link-bandwidth
// model, writing BENCH_ringpipe.json. With store-and-forward links the
// monolithic ring pays h full-set transmits end to end; the chunked ring
// overlaps them, approaching max(compute, transmit) per hop.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "audit/cluster.hpp"
#include "audit/metrics.hpp"
#include "crypto/modexp_engine.hpp"
#include "crypto/pohlig_hellman.hpp"
#include "logm/workload.hpp"

using namespace dla;

namespace {

// Builds per-node sets with ~50% pairwise overlap.
std::vector<std::vector<std::string>> make_sets(std::size_t n,
                                                std::size_t size) {
  std::vector<std::vector<std::string>> sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      bool shared = j < size / 2;
      sets[i].push_back(shared ? "shared-" + std::to_string(j)
                               : "own-" + std::to_string(i) + "-" +
                                     std::to_string(j));
    }
  }
  return sets;
}

void run_protocol(audit::Cluster& cluster, std::size_t n,
                  const std::vector<std::vector<std::string>>& sets,
                  audit::SessionId session) {
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::BigUInt> elements;
    for (const auto& s : sets[i]) {
      elements.push_back(
          crypto::encode_element(cluster.config()->ph_domain, s));
    }
    cluster.dla(i).stage_set_input(session, std::move(elements));
  }
  audit::SetSpec spec;
  spec.session = session;
  spec.op = audit::SetOp::Intersect;
  for (std::size_t i = 0; i < n; ++i) {
    spec.participants.push_back(cluster.config()->dla_nodes[i]);
  }
  spec.collector = spec.participants[0];
  spec.observers = {spec.participants[0]};
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();
}

// range(2) = ring chunk size (0 = legacy monolithic frames); range(3) =
// link bandwidth in bytes per simulated us (0 = latency model only). The
// chunk/bandwidth rows report the pipelined-vs-monolithic contrast in the
// deterministic sim_ms/op counter; wall time stays modexp-dominated.
void BM_SecureSetIntersection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  const std::size_t chunk = static_cast<std::size_t>(state.range(2));
  const double bandwidth = static_cast<double>(state.range(3));
  auto sets = make_sets(n, size);
  audit::Cluster::Options opts{
      logm::paper_schema(), std::max<std::size_t>(n, 2), 0, std::nullopt,
      /*seed=*/1, false};
  opts.set_chunk_size = chunk;
  audit::Cluster cluster(std::move(opts));
  cluster.sim().set_link_bandwidth(bandwidth);
  std::size_t result_size = 0;
  cluster.dla(0).on_set_result =
      [&](audit::SessionId, std::vector<bn::BigUInt> r) {
        result_size = r.size();
      };
  audit::SessionId session = 1;
  cluster.sim().reset_stats();
  audit::reset_crypto_op_counters();
  net::SimTime sim_elapsed = 0;
  for (auto _ : state) {
    net::SimTime t0 = cluster.sim().now();
    run_protocol(cluster, n, sets, session++);
    sim_elapsed += cluster.sim().now() - t0;
  }
  audit::CryptoOpCounters ops = audit::crypto_op_counters();
  state.counters["parties"] = static_cast<double>(n);
  state.counters["set_size"] = static_cast<double>(size);
  state.counters["chunk"] = static_cast<double>(chunk);
  state.counters["result"] = static_cast<double>(result_size);
  state.counters["sim_ms/op"] = benchmark::Counter(
      static_cast<double>(sim_elapsed) / 1000.0,
      benchmark::Counter::kAvgIterations);
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().messages_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["bytes/op"] = benchmark::Counter(
      static_cast<double>(cluster.sim().stats().bytes_sent),
      benchmark::Counter::kAvgIterations);
  state.counters["modexp/op"] = benchmark::Counter(
      static_cast<double>(ops.modexp_count), benchmark::Counter::kAvgIterations);
  state.counters["batches/op"] = benchmark::Counter(
      static_cast<double>(ops.modexp_batch_count),
      benchmark::Counter::kAvgIterations);
  // Element throughput of the whole protocol (n sets of `size` elements per
  // iteration): the before/after figure for the batched engine.
  state.counters["elem/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n * size),
      benchmark::Counter::kIsRate);
}

void BM_PlaintextIntersection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  auto sets = make_sets(n, size);
  for (auto _ : state) {
    std::set<std::string> acc(sets[0].begin(), sets[0].end());
    for (std::size_t i = 1; i < n; ++i) {
      std::set<std::string> next(sets[i].begin(), sets[i].end());
      std::set<std::string> merged;
      for (const auto& s : acc) {
        if (next.contains(s)) merged.insert(s);
      }
      acc = std::move(merged);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["parties"] = static_cast<double>(n);
  state.counters["set_size"] = static_cast<double>(size);
}

// Raw commutative-encryption throughput across prime widths: the knob that
// scales the whole protocol.
void BM_PohligHellmanEncrypt(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  crypto::ChaCha20Rng rng(5);
  crypto::PhDomain domain =
      bits == 256 ? crypto::PhDomain::fixed256()
                  : crypto::PhDomain::generate(rng, bits);
  crypto::PhKey key = crypto::PhKey::generate(domain, rng);
  bn::BigUInt m = crypto::encode_element(domain, "element");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.encrypt(m));
  }
  state.counters["prime_bits"] = static_cast<double>(bits);
  state.counters["elem/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

// Batched commutative encryption: one ring hop's worth of elements through
// PhKey::encrypt_batch. Contrast elem/s here against BM_PohligHellmanEncrypt
// (the serial path) for the engine's amortization + fan-out win.
void BM_PohligHellmanEncryptBatch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  crypto::ChaCha20Rng rng(5);
  crypto::PhDomain domain =
      bits == 256 ? crypto::PhDomain::fixed256()
                  : crypto::PhDomain::generate(rng, bits);
  crypto::PhKey key = crypto::PhKey::generate(domain, rng);
  std::vector<bn::BigUInt> base(count);
  for (std::size_t i = 0; i < count; ++i) {
    base[i] = crypto::encode_element(domain, "element-" + std::to_string(i));
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<bn::BigUInt> elements = base;
    state.ResumeTiming();
    key.encrypt_batch(elements);
    benchmark::DoNotOptimize(elements);
  }
  state.counters["prime_bits"] = static_cast<double>(bits);
  state.counters["batch"] = static_cast<double>(count);
  state.counters["threads"] =
      static_cast<double>(crypto::ModExpEngine::batch_threads());
  state.counters["elem/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * count),
      benchmark::Counter::kIsRate);
}

// --------------------------------------------------- --ringpipe mode -----

struct RingpipeRun {
  net::SimTime sim_us = 0;
  std::vector<bn::BigUInt> result;
};

// One protocol run on a fresh cluster (fixed seed, so ciphertexts — and
// therefore results — are comparable across chunk settings), returning the
// simulated start-to-result latency.
RingpipeRun ringpipe_once(std::size_t n, std::size_t size, std::size_t chunk,
                          double bandwidth, audit::SetOp op) {
  audit::Cluster::Options opts{
      logm::paper_schema(), std::max<std::size_t>(n, 2), 0, std::nullopt,
      /*seed=*/1, false};
  opts.set_chunk_size = chunk;
  audit::Cluster cluster(std::move(opts));
  cluster.sim().set_link_bandwidth(bandwidth);
  auto sets = make_sets(n, size);
  RingpipeRun out;
  bool done = false;
  cluster.dla(0).on_set_result =
      [&](audit::SessionId, std::vector<bn::BigUInt> r) {
        out.sim_us = cluster.sim().now();
        out.result = std::move(r);
        done = true;
      };
  audit::SetSpec spec;
  spec.session = 1;
  spec.op = op;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bn::BigUInt> elements;
    for (const auto& s : sets[i]) {
      elements.push_back(
          crypto::encode_element(cluster.config()->ph_domain, s));
    }
    cluster.dla(i).stage_set_input(spec.session, std::move(elements));
    spec.participants.push_back(cluster.config()->dla_nodes[i]);
  }
  spec.collector = spec.participants[0];
  spec.observers = {spec.participants[0]};
  net::SimTime t0 = cluster.sim().now();
  cluster.dla(0).start_set_protocol(cluster.sim(), spec);
  cluster.run();
  if (!done) {
    std::cerr << "FATAL: ringpipe protocol did not complete (n=" << n
              << " size=" << size << " chunk=" << chunk << ")\n";
    std::exit(1);
  }
  out.sim_us -= t0;
  return out;
}

// Pipelined-vs-monolithic simulated latency under a bandwidth-bound link
// model.
//
// Where the win comes from: the encrypt ring keeps every directed link
// loaded with one full stream per hop slot (n streams x n hops over n
// links), so its makespan is byte-bound regardless of framing. The decrypt
// pass, by contrast, is a SINGLE stream crossing n links in sequence — the
// monolithic ring pays n full transmits end to end while the chunked ring
// overlaps them across hops. The overall speedup therefore grows with the
// decrypt share of total bytes: union results (large combined sets) and
// wider rings are where the >= 1.5x acceptance bar is asserted; for every
// row we still require bit-identical results and no regression.
//
// Returns the number of failures: any result mismatch, any row where the
// pipelined ring regresses (> 10% slower), or the peak speedup across the
// sweep missing the 1.5x latency target.
int run_ringpipe(bool smoke, const std::string& json_path) {
  // 2 bytes/us with ~40-byte elements makes a 128-element frame cost
  // ~2.5ms of transmit against 100us propagation: firmly bandwidth-bound.
  constexpr double kBandwidth = 2.0;
  constexpr std::size_t kChunk = 16;
  struct Config {
    std::size_t n, size;
  };
  std::vector<Config> configs = {{5, 128}};
  if (!smoke) configs.insert(configs.end(), {{3, 128}, {5, 256}, {3, 512}});
  int failures = 0;
  double best_speedup = 0.0;
  std::ostringstream json;
  json << "[\n";
  bool first_row = true;
  for (audit::SetOp op : {audit::SetOp::Intersect, audit::SetOp::Union}) {
    const char* op_name = op == audit::SetOp::Intersect ? "intersect" : "union";
    for (const Config& c : configs) {
      RingpipeRun mono = ringpipe_once(c.n, c.size, 0, kBandwidth, op);
      RingpipeRun piped = ringpipe_once(c.n, c.size, kChunk, kBandwidth, op);
      if (mono.result != piped.result) {
        std::cerr << "FATAL: " << op_name << " n=" << c.n << " size=" << c.size
                  << ": chunked result differs from monolithic\n";
        ++failures;
      }
      double speedup = piped.sim_us > 0
                           ? static_cast<double>(mono.sim_us) /
                                 static_cast<double>(piped.sim_us)
                           : 0.0;
      best_speedup = std::max(best_speedup, speedup);
      if (speedup < 0.9) {
        std::cerr << "FAIL: " << op_name << " n=" << c.n << " size=" << c.size
                  << ": pipelined ring regressed (speedup " << speedup
                  << ")\n";
        ++failures;
      }
      if (!first_row) json << ",\n";
      first_row = false;
      json << "  {\"experiment\": \"ringpipe\", \"op\": \"" << op_name
           << "\", \"parties\": " << c.n << ", \"set_size\": " << c.size
           << ", \"chunk\": " << kChunk
           << ", \"bandwidth_bytes_per_us\": " << kBandwidth
           << ", \"mono_sim_us\": " << mono.sim_us
           << ", \"pipelined_sim_us\": " << piped.sim_us
           << ", \"result_size\": " << piped.result.size()
           << ", \"speedup\": " << speedup << "}";
      std::cout << "ringpipe " << op_name << " n=" << c.n
                << " size=" << c.size << ": mono=" << mono.sim_us
                << "us pipelined=" << piped.sim_us << "us speedup=" << speedup
                << "\n";
    }
  }
  json << "\n]\n";
  if (best_speedup < 1.5) {
    std::cerr << "FAIL: peak pipelined speedup " << best_speedup
              << " misses the 1.5x acceptance bar\n";
    ++failures;
  }
  std::ofstream out(json_path);
  out << json.str();
  std::cout << "wrote " << json_path << " (peak speedup " << best_speedup
            << ")\n";
  return failures;
}

}  // namespace

BENCHMARK(BM_SecureSetIntersection)
    ->Unit(benchmark::kMillisecond)
    ->Args({3, 8, 64, 0})
    ->Args({3, 32, 64, 0})
    ->Args({3, 128, 64, 0})
    ->Args({3, 1024, 64, 0})
    ->Args({5, 32, 64, 0})
    ->Args({9, 32, 64, 0})
    ->Args({13, 32, 64, 0})
    // Pipelined vs monolithic under a bandwidth-bound link model: compare
    // the deterministic sim_ms/op counter between these rows.
    ->Args({3, 128, 0, 2})
    ->Args({3, 128, 16, 2});

BENCHMARK(BM_PlaintextIntersection)
    ->Args({3, 32})
    ->Args({9, 32})
    ->Args({3, 128});

BENCHMARK(BM_PohligHellmanEncrypt)->Arg(128)->Arg(256)->Arg(512);

BENCHMARK(BM_PohligHellmanEncryptBatch)
    ->Unit(benchmark::kMillisecond)
    ->Args({256, 128})
    ->Args({256, 1024})
    ->Args({512, 128});

int main(int argc, char** argv) {
  bool ringpipe = false;
  bool smoke = false;
  std::string json_path = "BENCH_ringpipe.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ringpipe") == 0) ringpipe = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (ringpipe) return run_ringpipe(smoke, json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
