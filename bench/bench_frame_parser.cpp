// Frame-parser throughput: how fast the hardened incremental parser
// (net/frame.hpp) reassembles protocol frames from a TCP byte stream, as a
// function of payload size and of the chunk size the kernel hands back.
//
// Expected shape: cost is dominated by the single payload memcpy, so bytes/
// second should approach memory bandwidth for large frames; tiny chunks
// (worst-case recv granularity) bound the per-byte state-machine overhead.
// The hostile-stream benchmark shows rejection is O(1): a bad magic byte is
// refused immediately, so a flood of garbage connections costs almost
// nothing per connection.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/frame.hpp"

using namespace dla;

namespace {

std::vector<std::uint8_t> frame_stream(std::size_t frames,
                                       std::size_t payload_size) {
  std::vector<std::uint8_t> stream;
  stream.reserve(frames * (net::kFrameHeaderSize + payload_size));
  for (std::size_t i = 0; i < frames; ++i) {
    net::Message msg;
    msg.src = static_cast<net::NodeId>(i % 7);
    msg.dst = static_cast<net::NodeId>(i % 5);
    msg.type = 0x41;
    msg.payload.assign(payload_size, static_cast<std::uint8_t>(i));
    net::Bytes wire = net::encode_frame(msg);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  return stream;
}

// Parse a stream of identical-size frames fed in `chunk`-byte slices.
void BM_FrameParse(benchmark::State& state) {
  const std::size_t payload_size = static_cast<std::size_t>(state.range(0));
  const std::size_t chunk = static_cast<std::size_t>(state.range(1));
  const std::size_t kFrames = 64;
  const std::vector<std::uint8_t> stream = frame_stream(kFrames, payload_size);

  std::uint64_t frames = 0;
  for (auto _ : state) {
    net::FrameParser parser;
    std::vector<net::Message> out;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t len = std::min(chunk, stream.size() - off);
      parser.feed(stream.data() + off, len, out);
    }
    benchmark::DoNotOptimize(out);
    frames += out.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    stream.size()));
  state.counters["frames"] =
      benchmark::Counter(static_cast<double>(frames),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FrameParse)
    ->ArgsProduct({{0, 64, 4096, 65536}, {1, 64, 1500, 65536}})
    ->ArgNames({"payload", "chunk"});

// Hostile stream: every connection opens with a bad magic byte and must be
// rejected in O(1) — this is the cost floor of a garbage-flood attack.
void BM_FrameRejectBadMagic(benchmark::State& state) {
  const std::uint8_t bad = 0x00;
  std::uint64_t rejected = 0;
  for (auto _ : state) {
    net::FrameParser parser;
    std::vector<net::Message> out;
    try {
      parser.feed(&bad, 1, out);
    } catch (const net::FrameError&) {
      ++rejected;
    }
    benchmark::DoNotOptimize(parser);
  }
  state.counters["rejected"] =
      benchmark::Counter(static_cast<double>(rejected),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FrameRejectBadMagic);

// Oversize header: 24 bytes in, rejection before any payload allocation.
void BM_FrameRejectOversize(benchmark::State& state) {
  net::Message msg;
  msg.payload = net::Bytes{1};
  net::Bytes wire = net::encode_frame(msg);
  wire[20] = 0xff;
  wire[21] = 0xff;
  wire[22] = 0xff;
  wire[23] = 0x7f;
  for (auto _ : state) {
    net::FrameParser parser;
    std::vector<net::Message> out;
    try {
      parser.feed(wire.data(), net::kFrameHeaderSize, out);
    } catch (const net::FrameError&) {
    }
    benchmark::DoNotOptimize(parser);
  }
}
BENCHMARK(BM_FrameRejectOversize);

}  // namespace

BENCHMARK_MAIN();
