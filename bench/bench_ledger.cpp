// Ledger certification throughput gate (docs/LEDGER.md).
//
// Compares two ways of certifying a batch of ledger records:
//  * baseline  — one RSA signature verification per record;
//  * frontier  — audit::certify_records(): RSA-verify only the frontier
//    (records nothing points at), certify interior records transitively
//    through the hash links, and fall back to a signature check for records
//    the descent never reaches (tampered or dangling).
//
// The gate asserts bit-identical accept/reject verdicts between the two
// paths over a mixed clean+tampered batch, and that the frontier path's
// throughput meets or beats the baseline. Writes BENCH_ledger.json.
//
// Expected shape: the DAG interlock makes almost every record interior, so
// frontier certification replaces O(records) RSA verifications with
// O(frontier) of them plus one hash per interior record — speedups of one
// to two orders of magnitude at realistic batch sizes.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/ledger.hpp"

using namespace dla;

namespace {

// Builds a well-formed record DAG: `producers` round-robin minters, each
// record pointing at the two most recent *foreign* records (the interlock
// rule), rooted in the shared genesis.
std::vector<audit::LedgerRecord> build_batch(std::size_t records,
                                             std::size_t producers) {
  std::vector<crypto::RsaKeyPair> keys;
  for (std::size_t i = 0; i < producers; ++i) {
    crypto::ChaCha20Rng rng(9000 + i);
    keys.push_back(crypto::RsaKeyPair::generate(rng, 256));
  }
  std::vector<audit::LedgerRecord> batch;
  batch.push_back(audit::make_genesis_record("bench-ledger"));
  // last_by[p] = hashes of producer p's most recent records (newest last).
  std::vector<std::vector<std::string>> last_by(producers);
  std::vector<std::uint64_t> seq(producers, 0);
  std::string genesis_hash = batch.front().hash();
  for (std::size_t i = 0; i < records; ++i) {
    const std::size_t p = i % producers;
    std::vector<std::string> prevs;
    for (std::size_t back = 1; back <= producers && prevs.size() < 2; ++back) {
      const std::size_t q = (p + back) % producers;
      if (q != p && !last_by[q].empty()) prevs.push_back(last_by[q].back());
    }
    if (prevs.empty()) prevs.push_back(genesis_hash);
    audit::CheckpointPayload cp;
    cp.epoch = i;
    cp.high_glsn = i * 3 + 1;
    cp.accumulator = bn::BigUInt(100000 + i);
    cp.manifest_hash = "manifest-" + std::to_string(i);
    net::Writer w;
    cp.encode(w);
    audit::LedgerRecord rec =
        audit::make_ledger_record(audit::RecordKind::Checkpoint, keys[p],
                                  ++seq[p], std::move(prevs),
                                  std::move(w).take());
    last_by[p].push_back(rec.hash());
    batch.push_back(std::move(rec));
  }
  return batch;
}

// Flip one payload byte on every 16th record without re-signing: both
// certification paths must reject exactly these.
std::size_t tamper_some(std::vector<audit::LedgerRecord>& batch) {
  std::size_t tampered = 0;
  for (std::size_t i = 1; i < batch.size(); i += 16) {
    if (batch[i].payload.empty()) continue;
    batch[i].payload[0] ^= 0xff;
    ++tampered;
  }
  return tampered;
}

bool signature_ok(const audit::LedgerRecord& rec) {
  return audit::pseudonym_hash(rec.producer_key()) == rec.producer &&
         rec.producer_key().verify(rec.canonical(), rec.signature);
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int run_gate(bool smoke, const std::string& json_path) {
  struct Config {
    std::size_t records, producers;
  };
  std::vector<Config> configs = {{300, 4}};
  if (!smoke) configs.insert(configs.end(), {{1500, 4}, {1500, 8}, {4000, 8}});
  int failures = 0;
  double best_speedup = 0.0;
  std::ostringstream json;
  json << "[\n";
  bool first_row = true;
  for (const Config& c : configs) {
    std::vector<audit::LedgerRecord> batch = build_batch(c.records,
                                                         c.producers);
    const std::size_t tampered = tamper_some(batch);

    const std::uint64_t base_start = now_us();
    std::vector<bool> baseline(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      baseline[i] = signature_ok(batch[i]);
    }
    const std::uint64_t base_us = now_us() - base_start;

    const std::uint64_t cert_start = now_us();
    std::vector<bool> certified = audit::certify_records(batch);
    const std::uint64_t cert_us = now_us() - cert_start;

    std::size_t mismatches = 0, rejected = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      mismatches += baseline[i] != certified[i];
      rejected += !certified[i];
    }
    if (mismatches != 0) {
      std::cerr << "FATAL: records=" << c.records << " producers="
                << c.producers << ": " << mismatches
                << " verdicts differ from the per-record baseline\n";
      ++failures;
    }
    if (rejected != tampered) {
      std::cerr << "FATAL: records=" << c.records << " producers="
                << c.producers << ": rejected " << rejected << " records, "
                << tampered << " were tampered\n";
      ++failures;
    }
    const double speedup =
        cert_us > 0 ? static_cast<double>(base_us) / cert_us : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    // Throughput floor: frontier certification must not regress below the
    // per-record baseline (>10% slack for timer noise on tiny batches).
    if (speedup < 0.9) {
      std::cerr << "FAIL: records=" << c.records << " producers="
                << c.producers << ": frontier certification slower than the "
                << "baseline (speedup " << speedup << ")\n";
      ++failures;
    }
    const double base_rps =
        base_us > 0 ? batch.size() * 1e6 / base_us : 0.0;
    const double cert_rps =
        cert_us > 0 ? batch.size() * 1e6 / cert_us : 0.0;
    if (!first_row) json << ",\n";
    first_row = false;
    json << "  {\"experiment\": \"ledger_certification\", \"records\": "
         << batch.size() << ", \"producers\": " << c.producers
         << ", \"tampered\": " << tampered << ", \"baseline_us\": " << base_us
         << ", \"certified_us\": " << cert_us
         << ", \"baseline_records_per_s\": " << base_rps
         << ", \"certified_records_per_s\": " << cert_rps
         << ", \"speedup\": " << speedup
         << ", \"verdict_mismatches\": " << mismatches << "}";
    std::cout << "ledger records=" << batch.size() << " producers="
              << c.producers << ": baseline=" << base_us
              << "us frontier=" << cert_us << "us speedup=" << speedup
              << " (tampered " << tampered << ", all verdicts "
              << (mismatches == 0 ? "identical" : "DIFFER") << ")\n";
  }
  json << "\n]\n";
  std::ofstream out(json_path);
  out << json.str();
  std::cout << "wrote " << json_path << " (peak speedup " << best_speedup
            << ")\n";
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_ledger.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  return run_gate(smoke, json_path);
}
