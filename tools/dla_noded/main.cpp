// dla_noded — hosts DLA cluster actors behind the real TCP transport.
//
// Two roles, selected by flags:
//
//   --index=<i>   Node daemon: hosts DLA node P_i behind an epoll loop and
//                 serves until --run-ms elapses (safety bound) or SIGTERM.
//
//   --drive       Driver: hosts the blind TTP and every user node, then
//                 runs a log -> query -> aggregate workload against the
//                 node daemons and exits 0 only if every step verified.
//                 With --hostile it first feeds a malformed-frame corpus to
//                 P_0's listener over raw TCP and asserts the cluster still
//                 answers queries afterwards (the parser must reject, count,
//                 and close — never crash).
//
// All processes derive the identical shared config from the same flags via
// audit/bootstrap.hpp; there is no coordination traffic. See
// docs/TRANSPORT.md and tests/transport_e2e.sh for the 4-node loopback
// cluster this binary is exercised in by CI.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "audit/bootstrap.hpp"
#include "audit/metrics.hpp"
#include "logm/workload.hpp"
#include "net/frame.hpp"
#include "net/tcp_transport.hpp"

namespace {

using namespace dla;

struct Flags {
  std::optional<std::size_t> index;  // DLA node daemon when set
  bool drive = false;
  bool hostile = false;
  bool certify = false;
  std::size_t dla_count = 4;
  std::size_t users = 1;
  std::uint64_t seed = 1;
  std::uint16_t base_port = 45000;
  std::uint64_t run_ms = 60000;
};

std::optional<Flags> parse_flags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      std::size_t n = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) return arg.substr(n);
      return std::nullopt;
    };
    if (auto v = value("--index=")) {
      f.index = std::stoul(*v);
    } else if (arg == "--drive") {
      f.drive = true;
    } else if (arg == "--hostile") {
      f.hostile = true;
    } else if (arg == "--certify") {
      f.certify = true;
    } else if (auto v = value("--dla-count=")) {
      f.dla_count = std::stoul(*v);
    } else if (auto v = value("--users=")) {
      f.users = std::stoul(*v);
    } else if (auto v = value("--seed=")) {
      f.seed = std::stoull(*v);
    } else if (auto v = value("--base-port=")) {
      f.base_port = static_cast<std::uint16_t>(std::stoul(*v));
    } else if (auto v = value("--run-ms=")) {
      f.run_ms = std::stoull(*v);
    } else {
      std::fprintf(stderr, "dla_noded: unknown flag '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (!f.index.has_value() && !f.drive) {
    std::fprintf(stderr, "dla_noded: need --index=<i> or --drive\n");
    return std::nullopt;
  }
  if (f.index.has_value() && *f.index >= f.dla_count) {
    std::fprintf(stderr, "dla_noded: --index out of range\n");
    return std::nullopt;
  }
  return f;
}

audit::BootstrapOptions bootstrap_options(const Flags& f) {
  audit::BootstrapOptions opt;
  opt.schema = logm::paper_schema();
  opt.dla_count = f.dla_count;
  opt.user_count = f.users;
  opt.seed = f.seed;
  opt.auditor_users = true;  // driver queries verify unfiltered results
  opt.certify_reports = f.certify;
  return opt;
}

int run_node(const Flags& flags) {
  audit::BootstrapOptions opt = bootstrap_options(flags);
  audit::Bootstrap boot = audit::make_bootstrap(opt);
  auto node = audit::make_dla_node(boot, opt, *flags.index);
  net::TcpTransport transport(flags.base_port);
  transport.host(*node, audit::Bootstrap::dla_id(*flags.index));
  std::fprintf(stderr, "dla_noded: P%zu serving on 127.0.0.1:%u\n",
               *flags.index,
               flags.base_port + static_cast<unsigned>(*flags.index));
  // Serve until the safety bound; the e2e harness SIGTERMs us sooner.
  transport.run_until([] { return false; }, flags.run_ms * 1000);
  const net::TcpTransport::Stats& stats = transport.stats();
  std::fprintf(stderr,
               "dla_noded: P%zu exiting (delivered=%llu rejected=%llu)\n",
               *flags.index,
               static_cast<unsigned long long>(stats.frames_delivered),
               static_cast<unsigned long long>(stats.frames_rejected));
  return 0;
}

// Feeds one malformed byte string to P_0's listener over a raw socket. The
// daemon must reject the stream (close the connection) without dying; the
// caller re-verifies service afterwards.
bool send_raw(std::uint16_t port, const std::vector<std::uint8_t>& bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    // The daemon is expected to reset poisoned streams mid-write; send with
    // MSG_NOSIGNAL so that shows up as an error, not a SIGPIPE.
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) break;  // peer already closed on us: that is a rejection
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

void hostile_phase(const Flags& flags) {
  const std::uint16_t port = flags.base_port;  // P_0
  // Corpus: bad magic, bad version, bad flags, bad reserved, oversize
  // payload_len, a truncated header, and plain garbage. Each case must be
  // rejected by the incremental parser at the earliest offending byte.
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back({0xde, 0xad, 0xbe, 0xef});  // bad magic, truncated
  {
    net::Message msg{1, 0, 7, net::Bytes{1, 2, 3}};
    net::Bytes good = net::encode_frame(msg);
    std::vector<std::uint8_t> bad(good.begin(), good.end());
    bad[4] = 0x7f;  // version
    corpus.push_back(bad);
    bad = std::vector<std::uint8_t>(good.begin(), good.end());
    bad[5] = 0xff;  // flags
    corpus.push_back(bad);
    bad = std::vector<std::uint8_t>(good.begin(), good.end());
    bad[6] = 0x01;  // reserved
    corpus.push_back(bad);
    bad = std::vector<std::uint8_t>(good.begin(), good.end());
    bad[20] = 0xff;  // payload_len -> far beyond the frame cap
    bad[21] = 0xff;
    bad[22] = 0xff;
    bad[23] = 0x7f;
    corpus.push_back(bad);
    corpus.push_back(
        std::vector<std::uint8_t>(good.begin(), good.begin() + 11));
  }
  {
    std::vector<std::uint8_t> garbage(512);
    for (std::size_t i = 0; i < garbage.size(); ++i) {
      garbage[i] = static_cast<std::uint8_t>(i * 131 + 17);
    }
    corpus.push_back(garbage);
  }
  std::size_t sent = 0;
  for (const auto& bytes : corpus) {
    if (send_raw(port, bytes)) ++sent;
  }
  std::fprintf(stderr, "dla_noded: hostile corpus sent (%zu/%zu streams)\n",
               sent, corpus.size());
}

int run_driver(const Flags& flags) {
  audit::BootstrapOptions opt = bootstrap_options(flags);
  audit::Bootstrap boot = audit::make_bootstrap(opt);
  net::TcpTransport transport(flags.base_port);

  auto ttp = audit::make_ttp_node(boot);
  transport.host(*ttp, audit::Bootstrap::ttp_id(opt));
  std::vector<std::unique_ptr<audit::UserNode>> users;
  for (std::size_t j = 0; j < flags.users; ++j) {
    users.push_back(audit::make_user_node(boot, opt, j));
    transport.host(*users.back(), audit::Bootstrap::user_id(opt, j));
  }

  const std::uint64_t step_timeout_us = 20 * 1000 * 1000;
  auto step = [&](const char* what, const std::function<bool()>& done) {
    if (!transport.run_until(done, step_timeout_us)) {
      std::fprintf(stderr, "dla_noded: FAIL %s timed out\n", what);
      std::exit(1);
    }
    std::fprintf(stderr, "dla_noded: ok %s\n", what);
  };

  // Phase 1: confidential logging of the paper's Table 1 rows.
  std::vector<logm::Glsn> glsns;
  std::size_t failed_logs = 0;
  const auto records = logm::paper_table1_records();
  for (const auto& rec : records) {
    users[0]->log_record(transport, rec.attrs,
                         [&](std::optional<logm::Glsn> glsn) {
                           if (glsn.has_value()) {
                             glsns.push_back(*glsn);
                           } else {
                             ++failed_logs;
                           }
                         });
  }
  step("log", [&] { return glsns.size() + failed_logs == records.size(); });
  if (failed_logs != 0) {
    std::fprintf(stderr, "dla_noded: FAIL %zu log writes refused\n",
                 failed_logs);
    return 1;
  }

  // Phase 2: audit query spanning two owner nodes (AND -> secure set).
  auto run_query = [&](const std::string& criterion,
                       std::size_t expect_hits) {
    std::optional<audit::QueryOutcome> outcome;
    users[0]->query(transport, criterion,
                    [&](audit::QueryOutcome o) { outcome = std::move(o); });
    step(("query '" + criterion + "'").c_str(),
         [&] { return outcome.has_value(); });
    if (!outcome->ok || outcome->glsns.size() != expect_hits) {
      std::fprintf(stderr, "dla_noded: FAIL query '%s': ok=%d hits=%zu want=%zu (%s)\n",
                   criterion.c_str(), outcome->ok ? 1 : 0,
                   outcome->glsns.size(), expect_hits,
                   outcome->error.c_str());
      std::exit(1);
    }
  };
  // Table 1: three UDP rows, two of them with C1 >= 30.
  run_query("protocl = 'UDP'", 3);
  run_query("protocl = 'UDP' AND C1 >= 30", 2);

  // Phase 3: confidential aggregate (count + sum over C1).
  std::optional<audit::AggregateOutcome> agg;
  users[0]->aggregate_query(transport, "protocl = 'UDP'", audit::AggOp::Sum,
                            "C1",
                            [&](audit::AggregateOutcome o) { agg = o; });
  step("aggregate", [&] { return agg.has_value(); });
  if (!agg->ok || agg->count != 3 || agg->value != 20 + 34 + 45) {
    std::fprintf(stderr, "dla_noded: FAIL aggregate: ok=%d count=%llu value=%f\n",
                 agg->ok ? 1 : 0,
                 static_cast<unsigned long long>(agg->count), agg->value);
    return 1;
  }

  if (flags.hostile) {
    // Phase 4: malformed-frame corpus against P_0, then prove the cluster
    // still serves the exact query from phase 2.
    hostile_phase(flags);
    run_query("protocl = 'UDP' AND C1 >= 30", 2);
  }

  std::fprintf(stderr, "dla_noded: PASS driver workload\n");
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peers dropping poisoned connections is designed behavior; a write that
  // races the reset must fail with EPIPE, not kill the daemon. Belt and
  // braces with the MSG_NOSIGNAL on every socket write.
  std::signal(SIGPIPE, SIG_IGN);
  std::optional<Flags> flags = parse_flags(argc, argv);
  if (!flags.has_value()) return 2;
  return flags->index.has_value() ? run_node(*flags) : run_driver(*flags);
}
