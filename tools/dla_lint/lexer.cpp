// dla_lint lexer: a lightweight C++ tokenizer, enough for the token-shaped
// rules. Comments and string literals are excluded from rule matching;
// #include header names come out as TokKind::Include tokens; waivers and
// self-test EXPECT annotations are parsed out of comments.
//
// Correctness notes (each has a fixture regression):
//  - Raw string literals, including prefixed forms (R"", LR"", uR"", UR"",
//    u8R""), are consumed as a single contentless String token: their bytes
//    must never leak into identifier matching, and the newlines inside them
//    must still advance the line counter or every diagnostic after the
//    literal points at the wrong line.
//  - Backslash line-continuations are spliced the way the preprocessor does
//    it: a // comment ending in '\' swallows the next line (it is still
//    comment text, not code), and a backslash-newline inside a string
//    literal is removed while still counting the line.

#include "lint.hpp"

#include <cctype>
#include <cstring>

namespace dla_lint {

namespace {

// Parses "DLA-LINT-ALLOW(rule): reason" and "EXPECT(rule)" out of a comment.
void scan_comment(const std::string& text, int line, SourceFile* out) {
  std::size_t pos = 0;
  while ((pos = text.find("DLA-LINT-ALLOW(", pos)) != std::string::npos) {
    std::size_t open = pos + std::strlen("DLA-LINT-ALLOW(");
    std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    Waiver w;
    w.line = line;
    w.rule = text.substr(open, close - open);
    std::size_t after = close + 1;
    // Reason is required: a colon followed by at least one non-space char.
    if (after < text.size() && text[after] == ':') {
      std::size_t r = after + 1;
      while (r < text.size() && std::isspace(static_cast<unsigned char>(text[r])))
        ++r;
      w.has_reason = r < text.size();
    }
    out->waivers.push_back(std::move(w));
    pos = close;
  }
  pos = 0;
  while ((pos = text.find("EXPECT(", pos)) != std::string::npos) {
    // Avoid matching identifiers like GTEST's EXPECT_(; require the char
    // before to be non-alphanumeric.
    if (pos > 0 && (std::isalnum(static_cast<unsigned char>(text[pos - 1])) ||
                    text[pos - 1] == '_' || text[pos - 1] == '-')) {
      pos += 1;
      continue;
    }
    std::size_t open = pos + std::strlen("EXPECT(");
    std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    out->expects.emplace(line, text.substr(open, close - open));
    pos = close;
  }
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Logical end of a physical line honoring backslash-newline splices: skips
// over '\'-terminated lines, bumping *line per swallowed newline. Returns
// the index of the terminating '\n' (or src.size()).
std::size_t spliced_line_end(const std::string& src, std::size_t i,
                             int* line) {
  const std::size_t n = src.size();
  while (i < n) {
    if (src[i] == '\n') {
      // Continuation if the last non-CR char before the newline is '\'.
      std::size_t back = i;
      if (back > 0 && src[back - 1] == '\r') --back;
      if (back > 0 && src[back - 1] == '\\') {
        ++*line;
        ++i;
        continue;
      }
      return i;
    }
    ++i;
  }
  return n;
}

// If src[i..] begins a raw string literal (an optional L/u/U/u8 prefix, 'R',
// a '"', and a valid d-char sequence up to '('), returns true and sets
// *prefix_len to the length of the encoding prefix + 'R' (e.g. 1 for R",
// 3 for u8R").
bool at_raw_string(const std::string& src, std::size_t i,
                   std::size_t* prefix_len) {
  static const char* prefixes[] = {"u8R", "uR", "UR", "LR", "R"};
  for (const char* p : prefixes) {
    std::size_t len = std::strlen(p);
    if (src.compare(i, len, p) != 0) continue;
    if (i + len >= src.size() || src[i + len] != '"') continue;
    // A raw literal must not be the tail of a longer identifier (FOOR"...").
    if (i > 0 && ident_char(src[i - 1])) return false;
    // Validate the delimiter: at most 16 chars, none of space, '(' , ')',
    // '\\' or newline before the opening '('.
    std::size_t d = i + len + 1;
    std::size_t count = 0;
    while (d < src.size() && src[d] != '(') {
      char c = src[d];
      if (count >= 16 || c == ' ' || c == ')' || c == '\\' || c == '\n')
        return false;
      ++d;
      ++count;
    }
    if (d >= src.size()) return false;
    *prefix_len = len;
    return true;
  }
  return false;
}

}  // namespace

SourceFile tokenize(const std::string& rel_path, const std::string& src) {
  SourceFile out;
  out.rel_path = rel_path;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Backslash-newline splice between tokens: swallow it.
    if (c == '\\' && i + 1 < n &&
        (src[i + 1] == '\n' ||
         (src[i + 1] == '\r' && i + 2 < n && src[i + 2] == '\n'))) {
      ++line;
      i += src[i + 1] == '\n' ? 2 : 3;
      continue;
    }
    // #include directives: emit the header name as an Include token so that
    // `#include <unordered_map>` does not read as an identifier use, while
    // include-level rules (layering, crypto-boundary) match on the path.
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (src.compare(j, 7, "include") == 0) {
        int start_line = line;
        std::size_t end = spliced_line_end(src, i, &line);
        std::string rest = src.substr(j + 7, end - j - 7);
        std::size_t open = rest.find_first_of("<\"");
        if (open != std::string::npos) {
          char closer = rest[open] == '<' ? '>' : '"';
          std::size_t close = rest.find(closer, open + 1);
          if (close != std::string::npos) {
            out.tokens.push_back({TokKind::Include,
                                  rest.substr(open + 1, close - open - 1),
                                  start_line});
          }
        }
        // Don't lose a trailing // comment (waivers/EXPECTs on include lines).
        std::size_t cpos = rest.find("//");
        if (cpos != std::string::npos)
          scan_comment(rest.substr(cpos + 2), start_line, &out);
        i = end;
        continue;
      }
    }
    // Line comment. A '\' at end of line splices the next physical line
    // into the comment — the continuation is still comment text and must
    // not leak into token matching.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      int start_line = line;
      std::size_t end = spliced_line_end(src, i, &line);
      scan_comment(src.substr(i + 2, end - i - 2), start_line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      int start_line = line;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      scan_comment(src.substr(i + 2, j - i - 2), start_line, &out);
      i = j + 2 > n ? n : j + 2;
      continue;
    }
    // Raw string literal [prefix]R"delim( ... )delim" — consumed wholesale
    // as one contentless String token; nothing inside it may match a rule,
    // a waiver, or an EXPECT annotation.
    {
      std::size_t prefix_len = 0;
      if ((c == 'R' || c == 'L' || c == 'u' || c == 'U') &&
          at_raw_string(src, i, &prefix_len)) {
        int start_line = line;
        std::size_t dstart = i + prefix_len + 1;
        std::size_t paren = src.find('(', dstart);
        std::string closer = ")" + src.substr(dstart, paren - dstart) + "\"";
        std::size_t end = src.find(closer, paren + 1);
        std::size_t stop = end == std::string::npos ? n : end + closer.size();
        for (std::size_t k = i; k < stop; ++k)
          if (src[k] == '\n') ++line;
        out.tokens.push_back({TokKind::String, "", start_line});
        i = stop;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      std::size_t j = i + 1;
      std::string value;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          // Backslash-newline inside a literal is a splice: drop it but
          // keep the line counter honest.
          if (src[j + 1] == '\n') {
            ++line;
            j += 2;
            continue;
          }
          if (src[j + 1] == '\r' && j + 2 < n && src[j + 2] == '\n') {
            ++line;
            j += 3;
            continue;
          }
          value += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; tolerate
        value += src[j];
        ++j;
      }
      out.tokens.push_back({TokKind::String, value, start_line});
      i = j + 1 > n ? n : j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({TokKind::Identifier, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\''))
        ++j;
      out.tokens.push_back({TokKind::Number, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char operators we care about distinguishing from '='.
    static const char* two[] = {"==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
                                "|=", "&=", "^=", "->", "::", "++", "--", "&&",
                                "||", "<<", ">>"};
    bool matched = false;
    for (const char* op : two) {
      if (c == op[0] && i + 1 < n && src[i + 1] == op[1]) {
        out.tokens.push_back({TokKind::Punct, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace dla_lint
