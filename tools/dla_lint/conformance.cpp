// dla_lint pass 2, whole-program conformance rules:
//
//   codec-symmetry   encode/decode primitive sequences must match, and every
//                    paired payload struct / MsgType must be documented in
//                    docs/PROTOCOLS.md.
//   expect-end       every locally-constructed net::Reader must be drained
//                    with expect_end() before its scope ends.
//   include-layering explicit dependency DAG over src/{bignum,crypto,logm,
//                    net,audit}, checked on the tokenized #include graph.

#include "lint.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace dla_lint {

namespace {

std::string join_ops(const std::vector<std::string>& ops) {
  std::string s;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i != 0) s += ",";
    s += ops[i];
  }
  return s.empty() ? "<empty>" : s;
}

}  // namespace

// ---------------------------------------------------------- codec-symmetry --

void rule_codec_symmetry(const SymbolIndex& index,
                         const std::vector<SourceFile>& files,
                         const std::string& protocols_doc, Report* out) {
  (void)files;
  // Group definitions by (owner, is_helper). Helpers pair encode_<s> with
  // decode_<s>; structs pair T::encode with T::decode.
  struct Group {
    std::vector<const CodecDef*> encodes;
    std::vector<const CodecDef*> decodes;
  };
  std::map<std::pair<std::string, bool>, Group> groups;
  for (const CodecDef& def : index.codecs) {
    Group& g = groups[{def.owner, def.is_helper}];
    (def.is_encode ? g.encodes : g.decodes).push_back(&def);
  }

  for (const auto& entry : groups) {
    const std::string& owner = entry.first.first;
    const bool is_helper = entry.first.second;
    const Group& g = entry.second;
    if (g.encodes.empty() || g.decodes.empty()) continue;  // not a pair

    for (const CodecDef* dec : g.decodes) {
      // Prefer the encode in the same file; fall back to the first one.
      const CodecDef* enc = g.encodes.front();
      for (const CodecDef* cand : g.encodes) {
        if (cand->file == dec->file) {
          enc = cand;
          break;
        }
      }
      const std::string what =
          is_helper ? "helper pair encode_" + owner + "/decode_" + owner
                    : "codec " + owner;
      if (enc->ops.size() != dec->ops.size()) {
        std::ostringstream msg;
        msg << what << ": field count mismatch — encode ("
            << enc->file << ":" << enc->line << ") performs "
            << enc->ops.size() << " wire ops [" << join_ops(enc->ops)
            << "] but decode performs " << dec->ops.size() << " ["
            << join_ops(dec->ops) << "]";
        out->push_back({dec->file, dec->line, "codec-symmetry", msg.str()});
        continue;
      }
      for (std::size_t i = 0; i < enc->ops.size(); ++i) {
        if (enc->ops[i] == dec->ops[i]) continue;
        std::ostringstream msg;
        msg << what << ": field " << (i + 1) << " mismatch — encode ("
            << enc->file << ":" << enc->line << ") writes `" << enc->ops[i]
            << "` but decode reads `" << dec->ops[i] << "` (encode sequence ["
            << join_ops(enc->ops) << "], decode sequence ["
            << join_ops(dec->ops) << "])";
        out->push_back({dec->file, dec->line, "codec-symmetry", msg.str()});
        break;  // first divergence only; the rest is usually cascade
      }
    }

    // Documentation cross-check: every paired payload struct must appear in
    // docs/PROTOCOLS.md. Helpers are internal plumbing and exempt.
    if (!is_helper && !protocols_doc.empty() &&
        protocols_doc.find(owner) == std::string::npos) {
      const CodecDef* enc = g.encodes.front();
      out->push_back({enc->file, enc->line, "codec-symmetry",
                      "payload struct " + owner +
                          " has an encode/decode pair but is not documented "
                          "in docs/PROTOCOLS.md"});
    }
  }

  // Every MsgType enumerator must be documented with its payload layout.
  if (!protocols_doc.empty()) {
    for (const auto& decl : index.msgtype_decl) {
      if (protocols_doc.find(decl.first) != std::string::npos) continue;
      out->push_back({decl.second.first, decl.second.second, "codec-symmetry",
                      "MsgType::" + decl.first +
                          " has no payload documentation in "
                          "docs/PROTOCOLS.md"});
    }
  }
}

// -------------------------------------------------------------- expect-end --

void rule_expect_end(const SourceFile& f, Report* out) {
  const std::vector<Token>& toks = f.tokens;
  struct ActiveReader {
    std::string name;
    int depth;
    int line;
    bool drained;
  };
  std::vector<ActiveReader> readers;
  int depth = 0;
  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Token& tok = toks[t];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      while (!readers.empty() && readers.back().depth > depth) {
        const ActiveReader& r = readers.back();
        if (!r.drained) {
          out->push_back(
              {f.rel_path, r.line, "expect-end",
               "net::Reader `" + r.name +
                   "` leaves scope without expect_end(): trailing bytes in "
                   "the payload would go undetected"});
        }
        readers.pop_back();
      }
      continue;
    }
    if (tok.kind != TokKind::Identifier) continue;
    // Declaration: [net ::] Reader NAME ( ... )  or  Reader NAME { ... }.
    // Reference parameters (`net::Reader& r`) do not match: the reader is
    // owned (and drained) by the caller.
    if (tok.text == "Reader" && depth > 0 && t + 2 < toks.size() &&
        toks[t + 1].kind == TokKind::Identifier &&
        (toks[t + 2].text == "(" || toks[t + 2].text == "{")) {
      readers.push_back({toks[t + 1].text, depth, toks[t + 1].line, false});
      ++t;  // skip the name so it is not misread as a drain reference
      continue;
    }
    // Drain: NAME . expect_end ( )   (or -> for pointer-wrapped readers).
    if (t + 2 < toks.size() &&
        (toks[t + 1].text == "." || toks[t + 1].text == "->") &&
        toks[t + 2].text == "expect_end") {
      for (auto it = readers.rbegin(); it != readers.rend(); ++it) {
        if (it->name == tok.text) {
          it->drained = true;
          break;
        }
      }
    }
  }
}

// --------------------------------------------------------- include-layering --

void rule_include_layering(const SourceFile& f, const FileIndex& info,
                           Report* out) {
  if (info.layer.empty()) return;  // outside the layered core (baseline etc.)
  // The dependency DAG. An edge layer -> target is legal iff target appears
  // in the allowed set. bignum is the leaf; only crypto touches it directly —
  // everything above goes through crypto:: key handles (PR 4) except net,
  // whose wire codec serializes crypto::Big values (net/bytes owns
  // big-integer framing).
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"bignum", {"bignum"}},
      {"crypto", {"crypto", "bignum"}},
      {"net", {"net", "crypto", "bignum"}},
      {"logm", {"logm", "net", "crypto"}},
      {"audit", {"audit", "logm", "net", "crypto", "bignum"}},
  };
  static const char* kLayers[] = {"audit", "bignum", "crypto", "logm", "net"};
  const std::set<std::string>& allowed = kAllowed.at(info.layer);
  for (const IncludeEdge& inc : info.includes) {
    std::string target;
    for (const char* layer : kLayers) {
      if (has_prefix(inc.path, std::string(layer) + "/")) {
        target = layer;
        break;
      }
    }
    if (target.empty() || allowed.count(target) != 0) continue;
    out->push_back({f.rel_path, inc.line, "include-layering",
                    "layer `" + info.layer + "` must not include `" + target +
                        "` headers (#include \"" + inc.path +
                        "\" breaks the dependency DAG; see "
                        "docs/STATIC_ANALYSIS.md)"});
  }
}

}  // namespace dla_lint
