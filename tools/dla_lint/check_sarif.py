#!/usr/bin/env python3
"""Structural SARIF 2.1.0 validator for dla_lint --sarif output.

Checks the invariants GitHub code scanning and the SARIF 2.1.0 schema
require, without needing a jsonschema dependency:

  * top level: $schema, version == "2.1.0", runs is a non-empty list
  * runs[0].tool.driver.name, driver.rules with unique string ids
  * every result: ruleId present in driver.rules, ruleIndex consistent,
    level in the SARIF enum, message.text non-empty, and one physical
    location with an artifactLocation.uri + a positive region.startLine
  * originalUriBaseIds.SRCROOT.uri is an absolute file:// URI

Usage: check_sarif.py <file.sarif.json> [--min-results N] [--expect-clean]
"""

import json
import sys


def fail(msg):
    print(f"SARIF INVALID: {msg}")
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        fail("usage: check_sarif.py <file> [--min-results N] [--expect-clean]")
    path = argv[1]
    min_results = 0
    expect_clean = False
    args = argv[2:]
    while args:
        if args[0] == "--min-results" and len(args) >= 2:
            min_results = int(args[1])
            args = args[2:]
        elif args[0] == "--expect-clean":
            expect_clean = True
            args = args[1:]
        else:
            fail(f"unknown argument {args[0]}")

    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)

    if not isinstance(doc.get("$schema"), str) or "sarif" not in doc["$schema"]:
        fail("missing or malformed $schema")
    if doc.get("version") != "2.1.0":
        fail(f"version is {doc.get('version')!r}, expected '2.1.0'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty array")
    run = runs[0]

    driver = run.get("tool", {}).get("driver", {})
    if driver.get("name") != "dla_lint":
        fail(f"tool.driver.name is {driver.get('name')!r}")
    rules = driver.get("rules")
    if not isinstance(rules, list) or not rules:
        fail("tool.driver.rules must be a non-empty array")
    rule_ids = []
    for rule in rules:
        rid = rule.get("id")
        if not isinstance(rid, str) or not rid:
            fail(f"rule with missing id: {rule!r}")
        rule_ids.append(rid)
    if len(set(rule_ids)) != len(rule_ids):
        fail("duplicate rule ids in tool.driver.rules")

    base = run.get("originalUriBaseIds", {}).get("SRCROOT", {}).get("uri")
    if not isinstance(base, str) or not base.startswith("file:///"):
        fail(f"originalUriBaseIds.SRCROOT.uri is {base!r}")
    if not base.endswith("/"):
        fail("SRCROOT uri must end with '/' per the SARIF spec")

    results = run.get("results")
    if not isinstance(results, list):
        fail("runs[0].results must be an array")
    levels = {"none", "note", "warning", "error"}
    for i, res in enumerate(results):
        rid = res.get("ruleId")
        if rid not in rule_ids:
            fail(f"results[{i}].ruleId {rid!r} not declared in driver.rules")
        ridx = res.get("ruleIndex")
        if not isinstance(ridx, int) or not (0 <= ridx < len(rule_ids)):
            fail(f"results[{i}].ruleIndex {ridx!r} out of range")
        if rule_ids[ridx] != rid:
            fail(f"results[{i}].ruleIndex points at {rule_ids[ridx]!r}, "
                 f"ruleId says {rid!r}")
        if res.get("level") not in levels:
            fail(f"results[{i}].level {res.get('level')!r} not in {levels}")
        text = res.get("message", {}).get("text")
        if not isinstance(text, str) or not text:
            fail(f"results[{i}].message.text missing or empty")
        locs = res.get("locations")
        if not isinstance(locs, list) or len(locs) != 1:
            fail(f"results[{i}] must carry exactly one location")
        phys = locs[0].get("physicalLocation", {})
        art = phys.get("artifactLocation", {})
        uri = art.get("uri")
        if not isinstance(uri, str) or not uri or uri.startswith("/"):
            fail(f"results[{i}] artifactLocation.uri must be relative, "
                 f"got {uri!r}")
        if art.get("uriBaseId") != "SRCROOT":
            fail(f"results[{i}] artifactLocation.uriBaseId must be SRCROOT")
        start = phys.get("region", {}).get("startLine")
        if not isinstance(start, int) or start < 1:
            fail(f"results[{i}].region.startLine {start!r} must be >= 1")

    if expect_clean and results:
        fail(f"expected a clean run but found {len(results)} result(s)")
    if len(results) < min_results:
        fail(f"expected at least {min_results} results, found {len(results)}")

    print(f"SARIF OK: {len(results)} result(s), {len(rule_ids)} rules, "
          f"base {base}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
