// Fixture: the logm codec layer itself may serialize Values — the rule only
// scopes src/audit.
struct Writer {};
struct Record {
  void encode(Writer&) const;
};
void encode_attrs(Writer&, unsigned long, int);

void write_record(Writer& w, const Record& record) {
  record.encode(w);
  encode_attrs(w, 1, 2);
}
