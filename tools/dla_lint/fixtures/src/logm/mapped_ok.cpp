// Fixture: the storage layer itself owns the raw mappings — mmap-egress
// scopes everything *outside* src/logm, so none of these tokens flag here.
#include <sys/mman.h>

struct Mapping {
  const unsigned char* mapped_base_ = nullptr;
  unsigned long len = 0;
};

bool map_segment(Mapping* out, unsigned long len) {
  void* m = mmap(nullptr, len, 0, 0, -1, 0);
  if (m == MAP_FAILED) return false;
  out->mapped_base_ = static_cast<const unsigned char*>(m);
  out->len = len;
  return true;
}

void unmap_segment(Mapping* m) {
  munmap(const_cast<unsigned char*>(m->mapped_base_), m->len);
  m->mapped_base_ = nullptr;
}
