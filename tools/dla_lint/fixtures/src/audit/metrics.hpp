// Fixture metrics registry: counter structs for the metrics-registry rule.
#pragma once

#include <cstdint>

struct FixtureCounters {
  std::uint64_t good_counter = 0;  // written + documented: clean
  std::uint64_t undocumented_counter = 0;  // EXPECT(metrics-registry)
  std::uint64_t orphan_counter = 0;  // EXPECT(metrics-registry) EXPECT(metrics-registry)
  std::uint64_t preinc_counter = 0;  // written via ++c.preinc_counter: clean
};

// Not a Counters struct: ignored by the registry rule.
struct FixtureConfig {
  std::uint64_t untracked_knob = 0;
};
