// Fixture: raw Montgomery kernel usage outside src/crypto + src/bignum.
// (Fixture files are linted, never compiled.)
#include "bignum/montgomery.hpp"  // EXPECT(crypto-boundary)

unsigned long raw_math(unsigned long b, unsigned long e, unsigned long n,
                       unsigned long* acc, unsigned long* scratch) {
  bn::MontgomeryContext ctx(n);  // EXPECT(crypto-boundary)
  ctx.mont_mul_raw(acc, acc, acc, scratch);  // EXPECT(crypto-boundary)
  ctx.mont_sqr_raw(acc, acc, scratch);  // EXPECT(crypto-boundary)
  return modpow(b, e, n);  // EXPECT(crypto-boundary)
}
