// Fixture: MsgType dispatch switches — exhaustive, defaulted, and
// non-exhaustive forms, plus a waived default.
#include "audit/wire.hpp"

struct Msg {
  unsigned type = 0;
};

void handle_alpha(const Msg&);
void handle_beta_or_gamma(const Msg&);

// Exhaustive: every enumerator appears, ignored ones as explicit break
// groups. Clean under msgtype-switch; kDelta/kOmega stay uncovered because
// an ignore group does not count as handling.
void dispatch_exhaustive(const Msg& msg) {
  switch (msg.type) {
    case kAlpha: return handle_alpha(msg);
    case kBeta:
    case kGamma: return handle_beta_or_gamma(msg);
    case kSigma:
    case kDelta:
    case kOmega:
      break;  // not addressed to this fixture node
  }
}

// Explicit comparison counts as handling kGamma for msgtype-coverage.
bool is_gamma(const Msg& msg) { return msg.type == kGamma; }

// Harness-style classifier (the traffic harness' classify_message shape):
// every enumerator maps to a label through return cases, no default, and a
// fallback return after the switch. Labelled returns count as handling —
// kSigma's only coverage is here — while the trailing break group still
// does not, so kDelta/kOmega stay uncovered.
const char* classify(const Msg& msg) {
  switch (msg.type) {
    case kAlpha: return "alpha";
    case kBeta:
    case kGamma:
    case kSigma: return "grouped";
    case kDelta:
    case kOmega:
      break;  // deliberately unclassified
  }
  return "unclassified";
}

// A classifier that silently drops enumerators to the fallback return is
// exactly the bug the rule exists for: no default to waive, gaps flagged.
const char* classify_gapped(const Msg& msg) {
  switch (msg.type) {  // EXPECT(msgtype-switch)
    case kAlpha: return "alpha";
    case kBeta:
    case kGamma: return "grouped";
  }
  return "unclassified";
}

void dispatch_defaulted(const Msg& msg) {
  switch (msg.type) {
    case kAlpha: return handle_alpha(msg);
    default:  // EXPECT(msgtype-switch)
      break;
  }
}

void dispatch_nonexhaustive(const Msg& msg) {
  switch (msg.type) {  // EXPECT(msgtype-switch)
    case kAlpha: return handle_alpha(msg);
    case kBeta:
      break;
  }
}

void dispatch_waived(const Msg& msg) {
  switch (msg.type) {
    case kAlpha: return handle_alpha(msg);
    // DLA-LINT-ALLOW(msgtype-switch): fixture edge node, replies only
    default:
      break;
  }
}
