// Fixture: codec-symmetry. Encode/decode pairs whose wire-primitive
// sequences agree pass; any divergence (order, width, count, helper
// mismatch) must diagnose at the decode definition. Documented payload
// structs live in ../../docs/PROTOCOLS.md — an undocumented pair
// diagnoses at its encode definition.
#include "net/bytes.hpp"

// Symmetric pair, documented: clean.
struct GoodMsg {
  unsigned a = 0;
  std::string b;
  void encode(net::Writer& w) const {
    w.u32(a);
    w.str(b);
  }
  static GoodMsg decode(net::Reader& r) {
    GoodMsg m;
    m.a = r.u32();
    m.b = r.str();
    return m;
  }
};

// Field order swapped between the two directions.
struct SwappedMsg {
  unsigned a = 0;
  std::string b;
  void encode(net::Writer& w) const {
    w.u32(a);
    w.str(b);
  }
  static SwappedMsg decode(net::Reader& r) {  // EXPECT(codec-symmetry)
    SwappedMsg m;
    m.b = r.str();
    m.a = r.u32();
    return m;
  }
};

// The PR-6 kGlsnReply regression shape: decode consumes a vestigial u32
// that encode never wrote (field-count mismatch).
struct GlsnReplyFixture {
  unsigned long reqid = 0;
  unsigned long glsn = 0;
  void encode(net::Writer& w) const {
    w.u64(reqid);
    w.u64(glsn);
  }
  static GlsnReplyFixture decode(net::Reader& r) {  // EXPECT(codec-symmetry)
    GlsnReplyFixture m;
    m.reqid = r.u64();
    r.u32();  // vestigial gateway field from an earlier protocol draft
    m.glsn = r.u64();
    return m;
  }
};

// Same field, different width on the two sides.
struct WidthMsg {
  unsigned long v = 0;
  void encode(net::Writer& w) const { w.u32(v); }
  static WidthMsg decode(net::Reader& r) {  // EXPECT(codec-symmetry)
    WidthMsg m;
    m.v = r.u64();
    return m;
  }
};

// Symmetric but absent from docs/PROTOCOLS.md: the documentation
// cross-check fires at the encode definition.
struct QuietMsg {
  unsigned a = 0;
  void encode(net::Writer& w) const { w.u32(a); }  // EXPECT(codec-symmetry)
  static QuietMsg decode(net::Reader& r) {
    QuietMsg m;
    m.a = r.u32();
    return m;
  }
};

// Ledger-record shape (PR 10): vec-of-hashes framing, blob payload, big
// signature. Symmetric and documented: clean.
struct LedgerEntryFixture {
  unsigned char kind = 0;
  std::string producer;
  std::vector<std::string> prevs;
  net::Bytes payload;
  void encode(net::Writer& w) const {
    w.u8(kind);
    w.str(producer);
    w.vec(prevs, [](net::Writer& out, const std::string& h) { out.str(h); });
    w.blob(payload);
  }
  static LedgerEntryFixture decode(net::Reader& r) {
    LedgerEntryFixture m;
    m.kind = r.u8();
    m.producer = r.str();
    m.prevs = r.vec<std::string>([](net::Reader& in) { return in.str(); });
    m.payload = r.blob();
    return m;
  }
};

// Tails-reply shape whose decode grew a trailing settled-count the encode
// never wrote (the field-count drift class the ledger codecs must not
// regress into).
struct LedgerTailsFixture {
  unsigned long reqid = 0;
  std::vector<std::string> tails;
  void encode(net::Writer& w) const {
    w.u64(reqid);
    w.vec(tails, [](net::Writer& out, const std::string& h) { out.str(h); });
  }
  static LedgerTailsFixture decode(net::Reader& r) {  // EXPECT(codec-symmetry)
    LedgerTailsFixture m;
    m.reqid = r.u64();
    m.tails = r.vec<std::string>([](net::Reader& in) { return in.str(); });
    r.u64();  // settled count added to decode only
    return m;
  }
};

// Free helper pair, symmetric: vec framing + u64 elements on both sides.
void encode_entries(net::Writer& w, const std::vector<unsigned long>& v) {
  w.vec(v, [](net::Writer& out, unsigned long x) { out.u64(x); });
}
std::vector<unsigned long> decode_entries(net::Reader& r) {
  return r.vec<unsigned long>([](net::Reader& in) { return in.u64(); });
}

// Free helper pair with mismatched element width.
void encode_weights(net::Writer& w, const std::vector<unsigned long>& v) {
  w.vec(v, [](net::Writer& out, unsigned long x) { out.u64(x); });
}
std::vector<unsigned> decode_weights(net::Reader& r) {  // EXPECT(codec-symmetry)
  return r.vec<unsigned>([](net::Reader& in) { return in.u32(); });
}
