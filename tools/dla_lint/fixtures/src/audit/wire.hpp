// Fixture mini wire protocol: a MsgType enum for the switch/coverage rules.
#pragma once

enum MsgType : unsigned {
  kAlpha = 1,  // handled in dispatch.cpp's exhaustive switch
  kBeta,       // handled via a fallthrough group
  kGamma,      // handled via an explicit msg.type == comparison
  kSigma,      // handled only by classify()'s labelled return case
  kDelta,      // EXPECT(msgtype-coverage)
  kOmega,      // EXPECT(msgtype-coverage) EXPECT(codec-symmetry)
};
