// Fixture: expect-end discipline. Every locally-constructed net::Reader
// must be drained with expect_end() before its scope ends; reference
// parameters are caller-owned and exempt.
#include "net/bytes.hpp"

void reader_cases(const net::Bytes& payload) {
  {
    net::Reader good(payload);
    good.u32();
    good.expect_end();
  }
  {
    net::Reader bad(payload);  // EXPECT(expect-end)
    bad.u32();
  }
  // Drained inside a nested scope: the drain counts wherever it happens.
  {
    net::Reader branchy(payload);
    if (payload.size() > 4) {
      branchy.u64();
      branchy.expect_end();
    } else {
      branchy.expect_end();
    }
  }
  // DLA-LINT-ALLOW(expect-end): prefix peek only, trailing bytes expected
  net::Reader waived(payload);
  waived.u8();
}

// Reference parameter: the caller owns (and drains) this reader.
unsigned reads_prefix(net::Reader& r) { return r.u32(); }
