// Fixture: writes two of the three registry counters; orphan_counter is only
// ever read.
#include "audit/metrics.hpp"

std::uint64_t poke(FixtureCounters& c) {
  c.good_counter += 1;
  c.undocumented_counter++;
  ++c.preinc_counter;
  return c.orphan_counter;
}
