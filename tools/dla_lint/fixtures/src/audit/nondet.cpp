// Fixture: nondeterminism sources banned in protocol code.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

unsigned fixture_entropy() {
  std::random_device rd;  // EXPECT(nondeterminism)
  unsigned x = static_cast<unsigned>(rand());  // EXPECT(nondeterminism)
  srand(42);  // EXPECT(nondeterminism)
  std::mt19937 gen(x);  // EXPECT(nondeterminism)
  auto t = std::chrono::steady_clock::now();  // EXPECT(nondeterminism)
  (void)t;
  std::unordered_map<int, int> m;  // EXPECT(unordered-container)
  m[1] = static_cast<int>(gen());
  return rd() + static_cast<unsigned>(m.size());
}

// A variable merely *named* rand_state must not trip the rand() ban.
int rand_state = 0;
