// Fixture: plaintext Value/Fragment serialization from DLA-node code.
#include "audit/wire.hpp"

struct Writer {};
struct Fragment {
  void encode(Writer&) const;
};
struct SetSpec {
  void encode(Writer&) const;
};

void leak_plaintext(Writer& w, const Fragment& frag, Fragment* record,
                    const Fragment* fragments, const SetSpec& spec) {
  frag.encode(w);  // EXPECT(plaintext-egress)
  record->encode(w);  // EXPECT(plaintext-egress)
  fragments[2].encode(w);  // EXPECT(plaintext-egress)
  encode_attrs(w, 7, 1);  // EXPECT(plaintext-egress)
  spec.encode(w);  // clean: protocol spec payloads carry no Value plaintext
}

void authorized_readback(Writer& w, const Fragment& frag) {
  // DLA-LINT-ALLOW(plaintext-egress): fixture of a ticket-checked readback
  frag.encode(w);
}
