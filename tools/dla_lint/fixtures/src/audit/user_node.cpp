// Fixture: the fragment-upload path is whitelisted for plaintext egress —
// the user's own node serializing its own record is the one legitimate
// plaintext->wire crossing.
struct Writer {};
struct Fragment {
  void encode(Writer&) const;
};

void upload(Writer& w, const Fragment& frag) {
  frag.encode(w);  // clean: whitelisted upload path
}
