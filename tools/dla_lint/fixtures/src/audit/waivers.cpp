// Fixture: waiver syntax edge cases.
#include <unordered_map>

void waiver_cases() {
  // DLA-LINT-ALLOW(unordered-container) EXPECT(bad-waiver)
  std::unordered_map<int, int> a;  // EXPECT(unordered-container)
  a[0] = 1;

  // DLA-LINT-ALLOW(no-such-rule): misspelled rule id EXPECT(bad-waiver)

  // DLA-LINT-ALLOW(nondeterminism): nothing to suppress here EXPECT(unused-waiver)

  // DLA-LINT-ALLOW(unordered-container): scratch map, never iterated
  std::unordered_map<int, int> b;
  b[2] = 3;
}
