// Fixture: raw mapped-segment access from protocol code — every token form
// of the breach, plus a correctly-waived diagnostic probe.
#include <sys/mman.h>

struct FakeSegment {
  const unsigned char* mapped_base_ = nullptr;  // EXPECT(mmap-egress)
};

const void* peek_segment(const FakeSegment& seg, unsigned long len) {
  void* m = mmap(nullptr, len, 0, 0, -1, 0);  // EXPECT(mmap-egress)
  if (m == MAP_FAILED) return nullptr;        // EXPECT(mmap-egress)
  munmap(m, len);                             // EXPECT(mmap-egress)
  return seg.mapped_base_;                    // EXPECT(mmap-egress)
}

// DLA-LINT-ALLOW(mmap-egress): diagnostic probe, bytes never dereferenced
const void* waived_peek(const FakeSegment& seg) { return seg.mapped_base_; }
