// Fixture: the crypto layer itself may touch raw kernels, and the
// protocol-scoped determinism rules do not apply here.
#include "bignum/montgomery.hpp"

#include <unordered_set>

unsigned long crypto_ok(unsigned long x, unsigned long e, unsigned long n,
                        unsigned long* acc, unsigned long* scratch) {
  bn::MontgomeryContext ctx(n);
  ctx.mont_sqr_raw(acc, acc, scratch);
  std::unordered_set<unsigned long> seen;
  seen.insert(x);
  return modpow(x, e, n) + seen.size();
}
