// Fixture: wall clocks and unordered containers in simulator code, plus a
// correctly-waived case.
#include <chrono>
#include <unordered_map>
#include <unordered_set>

long fixture_now() {
  auto t = std::chrono::system_clock::now();  // EXPECT(nondeterminism)
  std::unordered_set<int> seen;  // EXPECT(unordered-container)
  seen.insert(1);
  // DLA-LINT-ALLOW(unordered-container): scratch lookup table, never iterated
  std::unordered_map<int, int> scratch;
  scratch[2] = 3;
  return t.time_since_epoch().count() +
         static_cast<long>(seen.size() + scratch.size());
}
