// Fixture: raw string literals are opaque. Nothing inside them — banned
// identifiers, waiver text, EXPECT annotations — may register, and their
// embedded newlines must still advance the line counter so diagnostics
// after the literal land on the right line.
#include <chrono>
#include <string>

const char* kPlainRaw = R"(std::rand() and system_clock::now() live here,
// DLA-LINT-ALLOW(nondeterminism): must never register as a waiver
EXPECT(nondeterminism) must never register as an expectation,
spread over four lines)";

// Prefixed raw literals (the historical leak): same opacity rules.
const char* kUtf8Raw = u8R"delim(unbalanced )" quote inside, still one
literal: system_clock::now() again)delim";

const wchar_t* kWideRaw = LR"(more system_clock text
on two lines)";

// An identifier merely ending in R is not a raw-string prefix.
int FOOR = 0;

long raw_line_anchor() {
  auto t = std::chrono::system_clock::now();  // EXPECT(nondeterminism)
  return t.time_since_epoch().count() + FOOR;
}
