// Fixture: include-layering. This file sits in the net layer, which may
// include net/, crypto/, and bignum/ headers only.
#include "net/frame.hpp"
#include "crypto/hash.hpp"
#include "bignum/biguint.hpp"
#include "audit/wire.hpp"   // EXPECT(include-layering)
#include "logm/record.hpp"  // EXPECT(include-layering)
// DLA-LINT-ALLOW(include-layering): transitional shim until the metrics split
#include "audit/metrics.hpp"
#include <vector>

// DLA-LINT-ALLOW(include-layering): nothing to suppress here EXPECT(unused-waiver)

int layering_fixture() { return 0; }
