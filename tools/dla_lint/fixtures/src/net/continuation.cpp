// Fixture: backslash line-continuations. A '\'-terminated // comment
// swallows the next physical line (still comment text), a spliced string
// literal keeps the line counter honest, and a spliced #include still
// attributes its diagnostic to the directive's first line.

// The next line is a continuation of this comment and must not tokenize: \
   std::unordered_map<int, int> inside_comment;

const char* kSpliced = "split \
across \
physical lines";

#include \
    "logm/record.hpp"  // EXPECT(include-layering)

void continuation_anchor() {
  std::unordered_set<int> bag;  // EXPECT(unordered-container)
  bag.insert(1);
}
