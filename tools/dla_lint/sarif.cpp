// SARIF 2.1.0 emitter for dla_lint. The output is consumed by GitHub code
// scanning (github/codeql-action/upload-sarif in the lint CI job) and
// schema-checked by the dla_lint_sarif_* ctests via check_sarif.py.

#include "lint.hpp"

#include <fstream>
#include <map>

namespace dla_lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[c >> 4];
          out += hex[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

bool write_sarif(const std::string& path, const std::string& root,
                 const std::vector<Diagnostic>& diagnostics) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;

  // Stable rule index: every known rule gets a reportingDescriptor so a
  // clean run still advertises what was checked.
  std::map<std::string, std::size_t> rule_index;
  for (const std::string& rule : known_rules())
    rule_index.emplace(rule, rule_index.size());
  for (const Diagnostic& d : diagnostics)  // safety: never drop a result
    rule_index.emplace(d.rule, rule_index.size());

  std::string base_uri = "file://" + root;
  if (base_uri.empty() || base_uri.back() != '/') base_uri += '/';

  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"dla_lint\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [\n";
  {
    // rule_index is name -> index; emit in index order.
    std::vector<const std::string*> by_index(rule_index.size());
    for (const auto& kv : rule_index) by_index[kv.second] = &kv.first;
    for (std::size_t i = 0; i < by_index.size(); ++i) {
      out << "            {\"id\": \"" << json_escape(*by_index[i])
          << "\", \"shortDescription\": {\"text\": \""
          << json_escape(*by_index[i]) << "\"}}"
          << (i + 1 < by_index.size() ? ",\n" : "\n");
    }
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"originalUriBaseIds\": {\n"
      << "        \"SRCROOT\": {\"uri\": \"" << json_escape(base_uri)
      << "\"}\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n"
        << "          \"ruleIndex\": " << rule_index.at(d.rule) << ",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(d.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(d.file) << "\", \"uriBaseId\": \"SRCROOT\"},\n"
        << "                \"region\": {\"startLine\": "
        << (d.line > 0 ? d.line : 1) << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < diagnostics.size() ? ",\n" : "\n");
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace dla_lint
