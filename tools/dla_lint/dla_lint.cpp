// dla_lint — repo-specific static analysis for the DLA codebase.
//
// Enforces, at lint time, the structural invariants the paper's guarantees
// rest on (see docs/STATIC_ANALYSIS.md for the full rationale):
//
//   crypto-boundary      raw modpow/Montgomery kernels and their contexts may
//                        only be touched under src/crypto/ and src/bignum/;
//                        everything else must go through ModExpEngine or a
//                        key-handle class (RsaKeyPair, AccumulatorStepper, ...).
//   plaintext-egress     logm::Value / Fragment / LogRecord plaintext may only
//                        be serialized toward the wire from the whitelisted
//                        fragment-upload path (user_node.cpp) and the logm
//                        codec layer itself — never from DLA-node handlers,
//                        unless explicitly waived (authorized-result paths).
//   nondeterminism       std::random_device, rand/srand, std::mt19937-family
//                        engines and wall clocks are banned in protocol and
//                        simulator code (src/audit, src/net): they silently
//                        break seeded chaos replay and SHA-256 trace-chain
//                        divergence pinpointing.
//   unordered-container  std::unordered_* containers are banned in protocol
//                        and simulator code: their iteration order is
//                        unspecified, which breaks deterministic replay.
//   msgtype-switch       a switch over MsgType must either handle every
//                        enumerator explicitly (no default) or carry a waiver
//                        on its default label; silently-defaulted dispatch is
//                        how new message types lose coverage.
//   msgtype-coverage     every MsgType enumerator must be *handled* (a case
//                        label whose body does real work, or an explicit
//                        msg.type == comparison) somewhere under src/.
//   metrics-registry     every counter field declared in audit/metrics.hpp
//                        counter structs must be written somewhere in src/
//                        and documented in docs/*.md.
//   mmap-egress          raw mapped segment memory (mmap/munmap/mapped_base)
//                        is confined to src/logm/: every other layer must
//                        consume fragments through logm::StorageEngine so
//                        hostile segment bytes can never reach a protocol
//                        handler — or the wire — without the segment
//                        validator having run (docs/STORAGE.md).
//
// Waiver syntax (same line or the line directly above the violation):
//   // DLA-LINT-ALLOW(<rule>): <reason>
// A waiver with no reason or an unknown rule id is itself a violation
// (bad-waiver); a waiver that suppresses nothing is reported (unused-waiver)
// so stale annotations cannot accumulate.
//
// Self-test mode (--self-test) runs the rules over a fixture tree whose files
// carry // EXPECT(<rule>) annotations and verifies the diagnostic set matches
// exactly (rule id + file + line), including that waivers suppress.
//
// Deliberately standalone C++17 with no libclang dependency: a lightweight
// lexer is enough for these token-shaped rules, keeps the tool buildable
// everywhere the tree builds, and runs over the whole repo in milliseconds.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#if defined(_WIN32)
#error "dla_lint supports POSIX hosts only"
#endif
#include <dirent.h>
#include <sys/stat.h>

namespace {

// ----------------------------------------------------------- diagnostics --

struct Diagnostic {
  std::string file;  // root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& rhs) const {
    if (file != rhs.file) return file < rhs.file;
    if (line != rhs.line) return line < rhs.line;
    if (rule != rhs.rule) return rule < rhs.rule;
    return message < rhs.message;
  }
};

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "crypto-boundary", "plaintext-egress",  "nondeterminism",
      "unordered-container", "msgtype-switch", "msgtype-coverage",
      "metrics-registry", "mmap-egress"};
  return rules;
}

// ------------------------------------------------------------- tokenizer --

enum class TokKind { Identifier, Number, String, Punct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Waiver {
  int line = 0;
  std::string rule;
  bool has_reason = false;
  bool used = false;
};

struct SourceFile {
  std::string rel_path;  // relative to root
  std::vector<Token> tokens;
  std::vector<Waiver> waivers;
  // line -> rules expected by the self-test fixture annotations.
  std::multimap<int, std::string> expects;
};

// Parses "DLA-LINT-ALLOW(rule): reason" and "EXPECT(rule)" out of a comment.
void scan_comment(const std::string& text, int line, SourceFile* out) {
  std::size_t pos = 0;
  while ((pos = text.find("DLA-LINT-ALLOW(", pos)) != std::string::npos) {
    std::size_t open = pos + std::strlen("DLA-LINT-ALLOW(");
    std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    Waiver w;
    w.line = line;
    w.rule = text.substr(open, close - open);
    std::size_t after = close + 1;
    // Reason is required: a colon followed by at least one non-space char.
    if (after < text.size() && text[after] == ':') {
      std::size_t r = after + 1;
      while (r < text.size() && std::isspace(static_cast<unsigned char>(text[r])))
        ++r;
      w.has_reason = r < text.size();
    }
    out->waivers.push_back(std::move(w));
    pos = close;
  }
  pos = 0;
  while ((pos = text.find("EXPECT(", pos)) != std::string::npos) {
    // Avoid matching identifiers like GTEST's EXPECT_(; require the char
    // before to be non-alphanumeric.
    if (pos > 0 && (std::isalnum(static_cast<unsigned char>(text[pos - 1])) ||
                    text[pos - 1] == '_' || text[pos - 1] == '-')) {
      pos += 1;
      continue;
    }
    std::size_t open = pos + std::strlen("EXPECT(");
    std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    out->expects.emplace(line, text.substr(open, close - open));
    pos = close;
  }
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

SourceFile tokenize(const std::string& rel_path, const std::string& src) {
  SourceFile out;
  out.rel_path = rel_path;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // #include directives: emit the header name as a String token so that
    // `#include <unordered_map>` does not read as an identifier use, while
    // include-level boundary rules can still match on the path.
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (src.compare(j, 7, "include") == 0) {
        std::size_t end = src.find('\n', i);
        if (end == std::string::npos) end = n;
        std::string rest = src.substr(j + 7, end - j - 7);
        std::size_t open = rest.find_first_of("<\"");
        if (open != std::string::npos) {
          char closer = rest[open] == '<' ? '>' : '"';
          std::size_t close = rest.find(closer, open + 1);
          if (close != std::string::npos) {
            out.tokens.push_back({TokKind::String,
                                  rest.substr(open + 1, close - open - 1),
                                  line});
          }
        }
        // Don't lose a trailing // comment (waivers/EXPECTs on include lines).
        std::size_t cpos = rest.find("//");
        if (cpos != std::string::npos)
          scan_comment(rest.substr(cpos + 2), line, &out);
        i = end;
        continue;
      }
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_comment(src.substr(i + 2, end - i - 2), line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      int start_line = line;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      scan_comment(src.substr(i + 2, j - i - 2), start_line, &out);
      i = j + 2 > n ? n : j + 2;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t dstart = i + 2;
      std::size_t paren = src.find('(', dstart);
      if (paren != std::string::npos) {
        std::string closer = ")" + src.substr(dstart, paren - dstart) + "\"";
        std::size_t end = src.find(closer, paren + 1);
        if (end == std::string::npos) end = n;
        for (std::size_t k = i; k < std::min(end + closer.size(), n); ++k)
          if (src[k] == '\n') ++line;
        out.tokens.push_back({TokKind::String, "", line});
        i = std::min(end + closer.size(), n);
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      std::string value;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          value += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; tolerate
        value += src[j];
        ++j;
      }
      out.tokens.push_back({TokKind::String, value, line});
      i = j + 1 > n ? n : j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({TokKind::Identifier, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\''))
        ++j;
      out.tokens.push_back({TokKind::Number, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char operators we care about distinguishing from '='.
    static const char* two[] = {"==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
                                "|=", "&=", "^=", "->", "::", "++", "--", "&&",
                                "||", "<<", ">>"};
    bool matched = false;
    for (const char* op : two) {
      if (c == op[0] && i + 1 < n && src[i + 1] == op[1]) {
        out.tokens.push_back({TokKind::Punct, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// -------------------------------------------------------------- fs walk --

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void walk(const std::string& dir, std::vector<std::string>* out) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    std::string path = dir + "/" + name;
    struct stat st{};
    if (stat(path.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      walk(path, out);
    } else if (S_ISREG(st.st_mode)) {
      out->push_back(path);
    }
  }
  closedir(d);
}

bool has_suffix(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool has_prefix(const std::string& s, const std::string& pre) {
  return s.compare(0, pre.size(), pre) == 0;
}

bool is_source_file(const std::string& path) {
  return has_suffix(path, ".cpp") || has_suffix(path, ".hpp") ||
         has_suffix(path, ".cc") || has_suffix(path, ".h");
}

// ------------------------------------------------------------ rule scope --

bool in_crypto_layer(const std::string& rel) {
  return has_prefix(rel, "src/crypto/") || has_prefix(rel, "src/bignum/");
}

bool in_protocol_layer(const std::string& rel) {
  return has_prefix(rel, "src/audit/") || has_prefix(rel, "src/net/");
}
// mmap-egress scope: everything under src/ except the storage layer itself.
bool outside_storage_layer(const std::string& rel) {
  return !has_prefix(rel, "src/logm/");
}

// Fragment-upload / application-side path where plaintext legitimately
// crosses into a message: the user's own node serializing its own record.
bool egress_whitelisted(const std::string& rel) {
  return !has_prefix(rel, "src/audit/") ||
         has_suffix(rel, "audit/user_node.cpp");
}

// --------------------------------------------------------------- linter --

class Linter {
 public:
  explicit Linter(std::string root) : root_(std::move(root)) {}

  bool load();
  void run();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  const std::vector<SourceFile>& files() const { return files_; }

 private:
  void report(const SourceFile& f, int line, const std::string& rule,
              std::string message) {
    pending_.push_back(Diagnostic{f.rel_path, line, rule, std::move(message)});
  }

  void rule_banned_tokens(const SourceFile& f);
  void rule_plaintext_egress(const SourceFile& f);
  void rule_msgtype_switches(const SourceFile& f);
  void rule_msgtype_coverage();
  void rule_metrics_registry();
  void collect_msgtype_enum(const SourceFile& f);
  void apply_waivers();

  std::string root_;
  std::vector<SourceFile> files_;
  std::vector<std::string> doc_texts_;  // contents of docs/*.md under root
  std::vector<Diagnostic> pending_;
  std::vector<Diagnostic> diagnostics_;

  std::set<std::string> msgtype_enumerators_;
  // enumerator -> (file, line) of its declaration, for coverage reporting.
  std::map<std::string, std::pair<std::string, int>> msgtype_decl_;
  std::set<std::string> msgtype_handled_;
};

bool Linter::load() {
  std::vector<std::string> paths;
  walk(root_ + "/src", &paths);
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    if (!is_source_file(path)) continue;
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "dla_lint: cannot read %s\n", path.c_str());
      return false;
    }
    files_.push_back(tokenize(path.substr(root_.size() + 1), text));
  }
  std::vector<std::string> docs;
  walk(root_ + "/docs", &docs);
  for (const std::string& path : docs) {
    if (!has_suffix(path, ".md")) continue;
    std::string text;
    if (read_file(path, &text)) doc_texts_.push_back(std::move(text));
  }
  return !files_.empty();
}

// Rules 1, 3, 4: straight banned-identifier scans with layer scoping.
void Linter::rule_banned_tokens(const SourceFile& f) {
  struct Ban {
    const char* token;
    const char* rule;
    bool (*applies)(const std::string& rel);
    const char* why;
  };
  static const Ban bans[] = {
      // Raw Montgomery kernel surface (bignum/montgomery.hpp).
      {"MontgomeryContext", "crypto-boundary", nullptr,
       "raw Montgomery contexts are confined to src/crypto + src/bignum; use "
       "ModExpEngine or a key-handle (RsaKeyPair, AccumulatorStepper)"},
      {"mont_mul_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"mont_sqr_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"to_mont_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"redc_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"mont_one", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"modpow", "crypto-boundary", nullptr,
       "raw modular exponentiation outside the crypto layer"},
      // Nondeterminism sources in protocol/simulator code.
      {"random_device", "nondeterminism", nullptr,
       "unseeded entropy breaks seeded chaos replay; use crypto::ChaCha20Rng "
       "with a named stream"},
      {"rand", "nondeterminism", nullptr,
       "rand() is unseeded global state; use crypto::ChaCha20Rng"},
      {"srand", "nondeterminism", nullptr,
       "global RNG seeding; use crypto::ChaCha20Rng"},
      {"mt19937", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream so replay stays seeded"},
      {"mt19937_64", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream so replay stays seeded"},
      {"minstd_rand", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream"},
      {"default_random_engine", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream"},
      {"system_clock", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"steady_clock", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"high_resolution_clock", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"gettimeofday", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"clock_gettime", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      // Unspecified iteration order in protocol/simulator code.
      {"unordered_map", "unordered-container", nullptr,
       "iteration order is unspecified and breaks deterministic replay; use "
       "std::map"},
      {"unordered_set", "unordered-container", nullptr,
       "iteration order is unspecified and breaks deterministic replay; use "
       "std::set"},
      {"unordered_multimap", "unordered-container", nullptr,
       "iteration order is unspecified; use std::multimap"},
      {"unordered_multiset", "unordered-container", nullptr,
       "iteration order is unspecified; use std::multiset"},
      // Raw mapped segment memory is confined to the storage layer; every
      // other layer consumes fragments through logm::StorageEngine, whose
      // open path validates the whole file first (docs/STORAGE.md).
      {"mmap", "mmap-egress", outside_storage_layer,
       "raw segment mappings are confined to src/logm; go through "
       "logm::StorageEngine"},
      {"munmap", "mmap-egress", outside_storage_layer,
       "raw segment mappings are confined to src/logm"},
      {"mapped_base", "mmap-egress", outside_storage_layer,
       "raw mapped-segment bytes must not leave src/logm; use the Segment "
       "row/cell accessors via logm::StorageEngine"},
      {"mapped_base_", "mmap-egress", outside_storage_layer,
       "raw mapped-segment bytes must not leave src/logm"},
      {"MAP_FAILED", "mmap-egress", outside_storage_layer,
       "raw segment mappings are confined to src/logm"},
  };

  const bool crypto_ok = in_crypto_layer(f.rel_path);
  const bool protocol = in_protocol_layer(f.rel_path);
  for (std::size_t t = 0; t < f.tokens.size(); ++t) {
    const Token& tok = f.tokens[t];
    if (tok.kind == TokKind::String) {
      // #include "bignum/montgomery.hpp" outside the crypto layer is the
      // include-level form of the same boundary breach.
      if (!crypto_ok &&
          tok.text.find("bignum/montgomery") != std::string::npos) {
        report(f, tok.line, "crypto-boundary",
               "including the raw Montgomery kernel header; depend on "
               "crypto/ key handles instead");
      }
      continue;
    }
    if (tok.kind != TokKind::Identifier) continue;
    for (const Ban& ban : bans) {
      if (tok.text != ban.token) continue;
      if (ban.applies != nullptr) {
        // Rule carries its own layer predicate (mmap-egress).
        if (!ban.applies(f.rel_path)) continue;
      } else {
        const bool is_crypto_rule =
            std::strcmp(ban.rule, "crypto-boundary") == 0;
        if (is_crypto_rule && crypto_ok) continue;
        if (!is_crypto_rule && !protocol) continue;
      }
      // `rand` only as a call: require '(' next so e.g. member fields named
      // rand_… (none today) or comments don't trip; all other tokens are
      // specific enough to flag on sight.
      if (std::strcmp(ban.token, "rand") == 0 &&
          (t + 1 >= f.tokens.size() || f.tokens[t + 1].text != "(")) {
        continue;
      }
      report(f, tok.line, ban.rule,
             std::string(ban.token) + ": " + ban.why);
    }
  }
}

// Rule 2: Value/Fragment/LogRecord serialization toward the wire from
// non-whitelisted audit code.
void Linter::rule_plaintext_egress(const SourceFile& f) {
  if (egress_whitelisted(f.rel_path)) return;
  const std::vector<Token>& toks = f.tokens;
  auto base_matches = [](const std::string& name) {
    std::string lower;
    for (char c : name) lower += static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    return lower.find("frag") != std::string::npos ||
           lower.find("record") != std::string::npos ||
           lower.find("value") != std::string::npos;
  };
  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].kind != TokKind::Identifier) continue;
    // encode_attrs(...) is the shared attribute-map codec.
    if (toks[t].text == "encode_attrs" && t + 1 < toks.size() &&
        toks[t + 1].text == "(") {
      report(f, toks[t].line, "plaintext-egress",
             "encode_attrs serializes plaintext attribute values; only the "
             "fragment-upload and authorized-result paths may do this");
      continue;
    }
    if (toks[t].text != "encode" || t + 1 >= toks.size() ||
        toks[t + 1].text != "(")
      continue;
    if (t < 2) continue;
    const Token& sep = toks[t - 1];
    std::string base;
    if (sep.text == "." || sep.text == "->") {
      // Walk back over an index suffix: fragments[i].encode -> fragments.
      std::size_t b = t - 2;
      if (toks[b].text == "]") {
        int depth = 1;
        while (b > 0 && depth > 0) {
          --b;
          if (toks[b].text == "]") ++depth;
          if (toks[b].text == "[") --depth;
        }
        if (b > 0) --b;
      }
      if (toks[b].kind == TokKind::Identifier) base = toks[b].text;
    } else if (sep.text == "::") {
      base = toks[t - 2].text;  // Fragment::encode / Value::encode
    }
    if (!base.empty() && base_matches(base)) {
      report(f, toks[t].line, "plaintext-egress",
             base + "." + "encode() serializes plaintext toward the wire "
             "outside the whitelisted upload path");
    }
  }
}

void Linter::collect_msgtype_enum(const SourceFile& f) {
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t t = 0; t + 1 < toks.size(); ++t) {
    if (toks[t].text != "enum") continue;
    std::size_t name_at = t + 1;
    if (name_at < toks.size() &&
        (toks[name_at].text == "class" || toks[name_at].text == "struct"))
      ++name_at;
    if (name_at >= toks.size() || toks[name_at].text != "MsgType") continue;
    // Skip an optional ": underlying_type" to the opening brace.
    std::size_t b = name_at + 1;
    while (b < toks.size() && toks[b].text != "{" && toks[b].text != ";") ++b;
    if (b >= toks.size() || toks[b].text != "{") continue;
    int depth = 1;
    bool expect_name = true;
    for (std::size_t j = b + 1; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}") {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (toks[j].text == ",") {
        expect_name = true;
        continue;
      }
      if (expect_name && toks[j].kind == TokKind::Identifier) {
        msgtype_enumerators_.insert(toks[j].text);
        msgtype_decl_.emplace(toks[j].text,
                              std::make_pair(f.rel_path, toks[j].line));
        expect_name = false;
      }
    }
  }
}

// Rules 5+6: switch analysis over MsgType and handled-enumerator coverage.
void Linter::rule_msgtype_switches(const SourceFile& f) {
  const std::vector<Token>& toks = f.tokens;

  // Coverage source (b): explicit `== kFoo` / `kFoo ==` comparisons.
  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].kind != TokKind::Identifier ||
        msgtype_enumerators_.count(toks[t].text) == 0)
      continue;
    if ((t > 0 && (toks[t - 1].text == "==" || toks[t - 1].text == "!=")) ||
        (t + 1 < toks.size() &&
         (toks[t + 1].text == "==" || toks[t + 1].text == "!=")))
      msgtype_handled_.insert(toks[t].text);
  }

  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].text != "switch" || toks[t].kind != TokKind::Identifier)
      continue;
    // Find the switch body '{' after the condition's balanced parens.
    std::size_t j = t + 1;
    while (j < toks.size() && toks[j].text != "(") ++j;
    if (j >= toks.size()) continue;
    int pdepth = 1;
    ++j;
    while (j < toks.size() && pdepth > 0) {
      if (toks[j].text == "(") ++pdepth;
      if (toks[j].text == ")") --pdepth;
      ++j;
    }
    while (j < toks.size() && toks[j].text != "{") ++j;
    if (j >= toks.size()) continue;

    // Walk the body at depth 1 collecting case groups and a default label.
    int depth = 1;
    std::size_t k = j + 1;
    std::set<std::string> labels;          // all MsgType case labels
    std::vector<std::string> group;        // labels of the current group
    bool group_has_work = false;
    bool in_group = false;
    int default_line = 0;
    int switch_line = toks[t].line;
    auto close_group = [&]() {
      if (in_group && group_has_work)
        for (const std::string& l : group) msgtype_handled_.insert(l);
      group.clear();
      group_has_work = false;
      in_group = false;
    };
    while (k < toks.size() && depth > 0) {
      const Token& tok = toks[k];
      if (tok.text == "{") ++depth;
      if (tok.text == "}") --depth;
      if (depth == 0) break;
      if (depth == 1 && tok.text == "case") {
        // New group starts only if the previous group already did work;
        // consecutive case labels fall through into one group.
        if (group_has_work) close_group();
        in_group = true;
        // Label is the identifier before ':' (possibly qualified).
        std::size_t l = k + 1;
        std::string last_ident;
        while (l < toks.size() && toks[l].text != ":") {
          if (toks[l].kind == TokKind::Identifier) last_ident = toks[l].text;
          ++l;
        }
        if (msgtype_enumerators_.count(last_ident) != 0) {
          labels.insert(last_ident);
          group.push_back(last_ident);
        }
        k = l + 1;
        continue;
      }
      if (depth == 1 && tok.text == "default" && k + 1 < toks.size() &&
          toks[k + 1].text == ":") {
        close_group();
        default_line = tok.line;
        ++k;
        continue;
      }
      if (in_group && tok.text != ";" && tok.text != "break" &&
          tok.text != "{" && tok.text != "}") {
        group_has_work = true;
      }
      ++k;
    }
    close_group();

    if (labels.empty()) continue;  // not a MsgType switch

    if (default_line != 0) {
      report(f, default_line, "msgtype-switch",
             "defaulted switch over MsgType silently swallows unhandled "
             "message types; enumerate every MsgType (ignored ones "
             "explicitly) or waive with a reason");
    } else {
      std::vector<std::string> missing;
      for (const std::string& e : msgtype_enumerators_)
        if (labels.count(e) == 0) missing.push_back(e);
      if (!missing.empty()) {
        std::string list;
        for (std::size_t m = 0; m < missing.size() && m < 6; ++m)
          list += (m != 0 ? ", " : "") + missing[m];
        if (missing.size() > 6) list += ", ...";
        report(f, switch_line, "msgtype-switch",
               "non-exhaustive switch over MsgType (missing " +
                   std::to_string(missing.size()) + ": " + list + ")");
      }
    }
  }
}

void Linter::rule_msgtype_coverage() {
  for (const std::string& e : msgtype_enumerators_) {
    if (msgtype_handled_.count(e) != 0) continue;
    const auto& decl = msgtype_decl_.at(e);
    // Synthesize against the declaring file so waivers on the enumerator
    // line work like every other rule.
    for (const SourceFile& f : files_) {
      if (f.rel_path != decl.first) continue;
      report(f, decl.second, "msgtype-coverage",
             e + " is declared but no dispatch switch or msg.type comparison "
             "handles it");
      break;
    }
  }
}

// Rule 7: counter structs in audit/metrics.hpp — every field written
// somewhere in src/ and mentioned in docs/*.md.
void Linter::rule_metrics_registry() {
  const SourceFile* metrics = nullptr;
  for (const SourceFile& f : files_)
    if (has_suffix(f.rel_path, "audit/metrics.hpp")) metrics = &f;
  if (metrics == nullptr) return;

  // Collect fields of structs whose name ends in "Counters".
  struct Field {
    std::string name;
    int line;
  };
  std::vector<Field> fields;
  const std::vector<Token>& toks = metrics->tokens;
  for (std::size_t t = 0; t + 2 < toks.size(); ++t) {
    if (toks[t].text != "struct" && toks[t].text != "class") continue;
    const std::string& name = toks[t + 1].text;
    if (!has_suffix(name, "Counters")) continue;
    std::size_t b = t + 2;
    while (b < toks.size() && toks[b].text != "{" && toks[b].text != ";") ++b;
    if (b >= toks.size() || toks[b].text != "{") continue;
    int depth = 1;
    for (std::size_t j = b + 1; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}") --depth;
      if (depth != 1) continue;
      // A field declaration looks like `<type tokens> name = 0;` or
      // `<type tokens> name;` — detect identifier followed by '=' or ';'
      // whose previous token is part of a type (identifier or '>').
      if (toks[j].kind == TokKind::Identifier && j + 1 < toks.size() &&
          (toks[j + 1].text == "=" || toks[j + 1].text == ";") &&
          j > b + 1 &&
          (toks[j - 1].kind == TokKind::Identifier || toks[j - 1].text == ">" ||
           toks[j - 1].text == "&" || toks[j - 1].text == "*")) {
        fields.push_back({toks[j].text, toks[j].line});
      }
    }
  }

  for (const Field& field : fields) {
    bool written = false;
    for (const SourceFile& f : files_) {
      if (&f == metrics) continue;
      const std::vector<Token>& ft = f.tokens;
      for (std::size_t t = 0; t < ft.size() && !written; ++t) {
        if (ft[t].kind != TokKind::Identifier || ft[t].text != field.name)
          continue;
        if (t + 1 < ft.size()) {
          const std::string& nx = ft[t + 1].text;
          if (nx == "=" || nx == "+=" || nx == "-=" || nx == "++" ||
              nx == "--")
            written = true;
        }
        if (t > 0 && (ft[t - 1].text == "++" || ft[t - 1].text == "--"))
          written = true;
        // Pre-increment through a member access: `++ctr.field`.
        if (t >= 3 && (ft[t - 1].text == "." || ft[t - 1].text == "->") &&
            (ft[t - 3].text == "++" || ft[t - 3].text == "--"))
          written = true;
      }
      if (written) break;
    }
    if (!written) {
      report(*metrics, field.line, "metrics-registry",
             "counter '" + field.name +
                 "' is declared but never written anywhere under src/");
    }
    bool documented = false;
    for (const std::string& doc : doc_texts_)
      if (doc.find(field.name) != std::string::npos) documented = true;
    if (!documented) {
      report(*metrics, field.line, "metrics-registry",
             "counter '" + field.name +
                 "' is not documented in any docs/*.md (see the metrics "
                 "registry in docs/STATIC_ANALYSIS.md)");
    }
  }
}

void Linter::apply_waivers() {
  // Waiver bookkeeping first: unknown rules / missing reasons are violations
  // and such waivers never suppress.
  for (SourceFile& f : files_) {
    for (Waiver& w : f.waivers) {
      if (known_rules().count(w.rule) == 0) {
        diagnostics_.push_back(
            Diagnostic{f.rel_path, w.line, "bad-waiver",
                       "DLA-LINT-ALLOW names unknown rule '" + w.rule + "'"});
        w.used = true;  // don't also report as unused
      } else if (!w.has_reason) {
        diagnostics_.push_back(Diagnostic{
            f.rel_path, w.line, "bad-waiver",
            "DLA-LINT-ALLOW(" + w.rule +
                ") is missing a reason: write DLA-LINT-ALLOW(" + w.rule +
                "): <why this is safe>"});
        w.used = true;
      }
    }
  }

  for (const Diagnostic& d : pending_) {
    bool suppressed = false;
    for (SourceFile& f : files_) {
      if (f.rel_path != d.file) continue;
      for (Waiver& w : f.waivers) {
        if (w.rule == d.rule && w.has_reason &&
            known_rules().count(w.rule) != 0 &&
            (w.line == d.line || w.line + 1 == d.line)) {
          w.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) diagnostics_.push_back(d);
  }

  for (const SourceFile& f : files_) {
    for (const Waiver& w : f.waivers) {
      if (!w.used) {
        diagnostics_.push_back(Diagnostic{
            f.rel_path, w.line, "unused-waiver",
            "DLA-LINT-ALLOW(" + w.rule +
                ") suppresses nothing on this or the next line; remove it"});
      }
    }
  }
  std::sort(diagnostics_.begin(), diagnostics_.end());
}

void Linter::run() {
  for (const SourceFile& f : files_) collect_msgtype_enum(f);
  for (const SourceFile& f : files_) {
    rule_banned_tokens(f);
    rule_plaintext_egress(f);
    rule_msgtype_switches(f);
  }
  rule_msgtype_coverage();
  rule_metrics_registry();
  apply_waivers();
}

// ------------------------------------------------------------ self test --

int run_self_test(const Linter& linter) {
  std::multiset<std::pair<std::string, std::pair<int, std::string>>> expected;
  for (const SourceFile& f : linter.files())
    for (const auto& [line, rule] : f.expects)
      expected.insert({f.rel_path, {line, rule}});

  std::multiset<std::pair<std::string, std::pair<int, std::string>>> actual;
  for (const Diagnostic& d : linter.diagnostics())
    actual.insert({d.file, {d.line, d.rule}});

  int failures = 0;
  for (const auto& e : expected) {
    if (actual.count(e) < expected.count(e)) {
      std::printf("SELF-TEST MISS: expected %s at %s:%d was not reported\n",
                  e.second.second.c_str(), e.first.c_str(), e.second.first);
      ++failures;
    }
  }
  for (const auto& a : actual) {
    if (expected.count(a) < actual.count(a)) {
      std::printf("SELF-TEST EXTRA: unexpected %s at %s:%d\n",
                  a.second.second.c_str(), a.first.c_str(), a.second.first);
      ++failures;
    }
  }
  if (expected.empty()) {
    std::printf("SELF-TEST: fixture tree carries no EXPECT annotations\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("self-test OK: %zu expected diagnostics all detected, "
                "no extras, waivers honored\n",
                expected.size());
    return 0;
  }
  std::printf("self-test FAILED: %d mismatches\n", failures);
  return 1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: dla_lint --root <repo-root> [--self-test]\n"
      "  Scans <root>/src/**.{h,hpp,cc,cpp} (+ <root>/docs/*.md for the\n"
      "  metrics registry). Exit 0 = clean, 1 = violations, 2 = usage/io.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }
  if (root.empty()) {
    usage();
    return 2;
  }
  while (root.size() > 1 && root.back() == '/') root.pop_back();

  Linter linter(root);
  if (!linter.load()) {
    std::fprintf(stderr, "dla_lint: no sources found under %s/src\n",
                 root.c_str());
    return 2;
  }
  linter.run();

  if (self_test) return run_self_test(linter);

  for (const Diagnostic& d : linter.diagnostics()) {
    std::printf("%s:%d: error: [%s] %s\n", d.file.c_str(), d.line,
                d.rule.c_str(), d.message.c_str());
  }
  if (linter.diagnostics().empty()) {
    std::printf("dla_lint: clean (%zu files)\n", linter.files().size());
    return 0;
  }
  std::printf("dla_lint: %zu violation(s)\n", linter.diagnostics().size());
  return 1;
}
