// dla_lint — repo-specific static analysis for the DLA codebase.
//
// A two-pass, whole-program analyzer. Pass 1 tokenizes every file under
// <root>/src (in parallel, --jobs N) and builds a cross-file SymbolIndex:
// the MsgType enum, every encode/decode codec definition with its extracted
// wire-primitive sequence, and the tokenized #include graph. Pass 2 runs the
// per-file rules in parallel over the shared token streams, then the
// whole-program rules over the index.
//
// Rules (see docs/STATIC_ANALYSIS.md for the full rationale):
//
//   crypto-boundary      raw modpow/Montgomery kernels and their contexts may
//                        only be touched under src/crypto/ and src/bignum/;
//                        everything else must go through ModExpEngine or a
//                        key-handle class (RsaKeyPair, AccumulatorStepper, ...).
//   plaintext-egress     logm::Value / Fragment / LogRecord plaintext may only
//                        be serialized toward the wire from the whitelisted
//                        fragment-upload path (user_node.cpp) and the logm
//                        codec layer itself — never from DLA-node handlers,
//                        unless explicitly waived (authorized-result paths).
//   nondeterminism       std::random_device, rand/srand, std::mt19937-family
//                        engines and wall clocks are banned in protocol and
//                        simulator code (src/audit, src/net): they silently
//                        break seeded chaos replay and SHA-256 trace-chain
//                        divergence pinpointing.
//   unordered-container  std::unordered_* containers are banned in protocol
//                        and simulator code: their iteration order is
//                        unspecified, which breaks deterministic replay.
//   msgtype-switch       a switch over MsgType must either handle every
//                        enumerator explicitly (no default) or carry a waiver
//                        on its default label; silently-defaulted dispatch is
//                        how new message types lose coverage.
//   msgtype-coverage     every MsgType enumerator must be *handled* (a case
//                        label whose body does real work, or an explicit
//                        msg.type == comparison) somewhere under src/.
//   metrics-registry     every counter field declared in audit/metrics.hpp
//                        counter structs must be written somewhere in src/
//                        and documented in docs/*.md.
//   mmap-egress          raw mapped segment memory (mmap/munmap/mapped_base)
//                        is confined to src/logm/ (docs/STORAGE.md).
//   codec-symmetry       every encode(net::Writer&)/decode(net::Reader&) pair
//                        must perform the same ordered wire-primitive
//                        sequence in both directions, and every paired
//                        payload struct / MsgType enumerator must be
//                        documented in docs/PROTOCOLS.md. This is the check
//                        that would have caught the PR-6 kGlsnReply
//                        vestigial-u32 bug at lint time.
//   expect-end           every locally-constructed net::Reader must be
//                        drained with expect_end() before its scope ends, so
//                        the trailing-bytes discipline cannot regress.
//   include-layering     the explicit dependency DAG over src/{bignum,crypto,
//                        logm,net,audit}, checked per tokenized #include.
//
// Waiver syntax (same line or the line directly above the violation):
//   // DLA-LINT-ALLOW(<rule>): <reason>
// A waiver with no reason or an unknown rule id is itself a violation
// (bad-waiver); a waiver that suppresses nothing is reported (unused-waiver)
// so stale annotations cannot accumulate.
//
// Self-test mode (--self-test) runs the rules over a fixture tree whose files
// carry // EXPECT(<rule>) annotations and verifies the diagnostic set matches
// exactly (rule id + file + line), including that waivers suppress.
//
// Deliberately standalone C++17 with no libclang dependency: a lightweight
// lexer is enough for these token-shaped rules, keeps the tool buildable
// everywhere the tree builds, and runs over the whole repo in milliseconds
// (--budget-ms asserts that in CI).

#include "lint.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#if defined(_WIN32)
#error "dla_lint supports POSIX hosts only"
#endif
#include <limits.h>

namespace dla_lint {

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "crypto-boundary",  "plaintext-egress", "nondeterminism",
      "unordered-container", "msgtype-switch", "msgtype-coverage",
      "metrics-registry", "mmap-egress",      "codec-symmetry",
      "expect-end",       "include-layering"};
  return rules;
}

namespace {

// ------------------------------------------------------------ rule scope --

bool in_crypto_layer(const std::string& rel) {
  return has_prefix(rel, "src/crypto/") || has_prefix(rel, "src/bignum/");
}

bool in_protocol_layer(const std::string& rel) {
  return has_prefix(rel, "src/audit/") || has_prefix(rel, "src/net/");
}
// mmap-egress scope: everything under src/ except the storage layer itself.
bool outside_storage_layer(const std::string& rel) {
  return !has_prefix(rel, "src/logm/");
}

// Fragment-upload / application-side path where plaintext legitimately
// crosses into a message: the user's own node serializing its own record.
bool egress_whitelisted(const std::string& rel) {
  return !has_prefix(rel, "src/audit/") ||
         has_suffix(rel, "audit/user_node.cpp");
}

// ---------------------------------------------------------- parallel_for --

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t nthreads =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (std::size_t w = 0; w < nthreads; ++w) {
    threads.emplace_back([&] {
      while (true) {
        std::size_t i = next.fetch_add(1);
        if (i >= count) break;
        fn(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

// --------------------------------------------------------- per-file rules --

// crypto-boundary, nondeterminism, unordered-container, mmap-egress:
// straight banned-identifier scans with layer scoping.
void rule_banned_tokens(const SourceFile& f, Report* out) {
  struct Ban {
    const char* token;
    const char* rule;
    bool (*applies)(const std::string& rel);
    const char* why;
  };
  static const Ban bans[] = {
      // Raw Montgomery kernel surface (bignum/montgomery.hpp).
      {"MontgomeryContext", "crypto-boundary", nullptr,
       "raw Montgomery contexts are confined to src/crypto + src/bignum; use "
       "ModExpEngine or a key-handle (RsaKeyPair, AccumulatorStepper)"},
      {"mont_mul_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"mont_sqr_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"to_mont_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"redc_raw", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"mont_one", "crypto-boundary", nullptr, "raw Montgomery kernel"},
      {"modpow", "crypto-boundary", nullptr,
       "raw modular exponentiation outside the crypto layer"},
      // Nondeterminism sources in protocol/simulator code.
      {"random_device", "nondeterminism", nullptr,
       "unseeded entropy breaks seeded chaos replay; use crypto::ChaCha20Rng "
       "with a named stream"},
      {"rand", "nondeterminism", nullptr,
       "rand() is unseeded global state; use crypto::ChaCha20Rng"},
      {"srand", "nondeterminism", nullptr,
       "global RNG seeding; use crypto::ChaCha20Rng"},
      {"mt19937", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream so replay stays seeded"},
      {"mt19937_64", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream so replay stays seeded"},
      {"minstd_rand", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream"},
      {"default_random_engine", "nondeterminism", nullptr,
       "use crypto::ChaCha20Rng with a named stream"},
      {"system_clock", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"steady_clock", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"high_resolution_clock", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"gettimeofday", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      {"clock_gettime", "nondeterminism", nullptr,
       "wall clocks diverge across runs; use net::Simulator virtual time"},
      // Unspecified iteration order in protocol/simulator code.
      {"unordered_map", "unordered-container", nullptr,
       "iteration order is unspecified and breaks deterministic replay; use "
       "std::map"},
      {"unordered_set", "unordered-container", nullptr,
       "iteration order is unspecified and breaks deterministic replay; use "
       "std::set"},
      {"unordered_multimap", "unordered-container", nullptr,
       "iteration order is unspecified; use std::multimap"},
      {"unordered_multiset", "unordered-container", nullptr,
       "iteration order is unspecified; use std::multiset"},
      // Raw mapped segment memory is confined to the storage layer; every
      // other layer consumes fragments through logm::StorageEngine, whose
      // open path validates the whole file first (docs/STORAGE.md).
      {"mmap", "mmap-egress", outside_storage_layer,
       "raw segment mappings are confined to src/logm; go through "
       "logm::StorageEngine"},
      {"munmap", "mmap-egress", outside_storage_layer,
       "raw segment mappings are confined to src/logm"},
      {"mapped_base", "mmap-egress", outside_storage_layer,
       "raw mapped-segment bytes must not leave src/logm; use the Segment "
       "row/cell accessors via logm::StorageEngine"},
      {"mapped_base_", "mmap-egress", outside_storage_layer,
       "raw mapped-segment bytes must not leave src/logm"},
      {"MAP_FAILED", "mmap-egress", outside_storage_layer,
       "raw segment mappings are confined to src/logm"},
  };

  const bool crypto_ok = in_crypto_layer(f.rel_path);
  const bool protocol = in_protocol_layer(f.rel_path);
  for (std::size_t t = 0; t < f.tokens.size(); ++t) {
    const Token& tok = f.tokens[t];
    if (tok.kind == TokKind::Include) {
      // #include "bignum/montgomery.hpp" outside the crypto layer is the
      // include-level form of the same boundary breach. Matching on Include
      // tokens (not String) means a string literal containing the path can
      // never spoof or trip this.
      if (!crypto_ok &&
          tok.text.find("bignum/montgomery") != std::string::npos) {
        out->push_back({f.rel_path, tok.line, "crypto-boundary",
                        "including the raw Montgomery kernel header; depend "
                        "on crypto/ key handles instead"});
      }
      continue;
    }
    if (tok.kind != TokKind::Identifier) continue;
    for (const Ban& ban : bans) {
      if (tok.text != ban.token) continue;
      if (ban.applies != nullptr) {
        // Rule carries its own layer predicate (mmap-egress).
        if (!ban.applies(f.rel_path)) continue;
      } else {
        const bool is_crypto_rule =
            std::strcmp(ban.rule, "crypto-boundary") == 0;
        if (is_crypto_rule && crypto_ok) continue;
        if (!is_crypto_rule && !protocol) continue;
      }
      // `rand` only as a call: require '(' next so e.g. member fields named
      // rand_… (none today) or comments don't trip; all other tokens are
      // specific enough to flag on sight.
      if (std::strcmp(ban.token, "rand") == 0 &&
          (t + 1 >= f.tokens.size() || f.tokens[t + 1].text != "(")) {
        continue;
      }
      out->push_back({f.rel_path, tok.line, ban.rule,
                      std::string(ban.token) + ": " + ban.why});
    }
  }
}

// plaintext-egress: Value/Fragment/LogRecord serialization toward the wire
// from non-whitelisted audit code.
void rule_plaintext_egress(const SourceFile& f, Report* out) {
  if (egress_whitelisted(f.rel_path)) return;
  const std::vector<Token>& toks = f.tokens;
  auto base_matches = [](const std::string& name) {
    std::string lower;
    for (char c : name) lower += static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    return lower.find("frag") != std::string::npos ||
           lower.find("record") != std::string::npos ||
           lower.find("value") != std::string::npos;
  };
  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].kind != TokKind::Identifier) continue;
    // encode_attrs(...) is the shared attribute-map codec.
    if (toks[t].text == "encode_attrs" && t + 1 < toks.size() &&
        toks[t + 1].text == "(") {
      out->push_back({f.rel_path, toks[t].line, "plaintext-egress",
                      "encode_attrs serializes plaintext attribute values; "
                      "only the fragment-upload and authorized-result paths "
                      "may do this"});
      continue;
    }
    if (toks[t].text != "encode" || t + 1 >= toks.size() ||
        toks[t + 1].text != "(")
      continue;
    if (t < 2) continue;
    const Token& sep = toks[t - 1];
    std::string base;
    if (sep.text == "." || sep.text == "->") {
      // Walk back over an index suffix: fragments[i].encode -> fragments.
      std::size_t b = t - 2;
      if (toks[b].text == "]") {
        int depth = 1;
        while (b > 0 && depth > 0) {
          --b;
          if (toks[b].text == "]") ++depth;
          if (toks[b].text == "[") --depth;
        }
        if (b > 0) --b;
      }
      if (toks[b].kind == TokKind::Identifier) base = toks[b].text;
    } else if (sep.text == "::") {
      base = toks[t - 2].text;  // Fragment::encode / Value::encode
    }
    if (!base.empty() && base_matches(base)) {
      out->push_back({f.rel_path, toks[t].line, "plaintext-egress",
                      base + "." + "encode() serializes plaintext toward the "
                      "wire outside the whitelisted upload path"});
    }
  }
}

// msgtype-switch + the per-file half of msgtype-coverage: switch analysis
// over MsgType and handled-enumerator collection. `handled` is this file's
// contribution, merged across files before the coverage verdict.
void rule_msgtype_switches(const SourceFile& f,
                           const std::set<std::string>& enumerators,
                           Report* out, std::set<std::string>* handled) {
  const std::vector<Token>& toks = f.tokens;

  // Coverage source (b): explicit `== kFoo` / `kFoo ==` comparisons.
  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].kind != TokKind::Identifier ||
        enumerators.count(toks[t].text) == 0)
      continue;
    if ((t > 0 && (toks[t - 1].text == "==" || toks[t - 1].text == "!=")) ||
        (t + 1 < toks.size() &&
         (toks[t + 1].text == "==" || toks[t + 1].text == "!=")))
      handled->insert(toks[t].text);
  }

  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].text != "switch" || toks[t].kind != TokKind::Identifier)
      continue;
    // Find the switch body '{' after the condition's balanced parens.
    std::size_t j = t + 1;
    while (j < toks.size() && toks[j].text != "(") ++j;
    if (j >= toks.size()) continue;
    int pdepth = 1;
    ++j;
    while (j < toks.size() && pdepth > 0) {
      if (toks[j].text == "(") ++pdepth;
      if (toks[j].text == ")") --pdepth;
      ++j;
    }
    while (j < toks.size() && toks[j].text != "{") ++j;
    if (j >= toks.size()) continue;

    // Walk the body at depth 1 collecting case groups and a default label.
    int depth = 1;
    std::size_t k = j + 1;
    std::set<std::string> labels;          // all MsgType case labels
    std::vector<std::string> group;        // labels of the current group
    bool group_has_work = false;
    bool in_group = false;
    int default_line = 0;
    int switch_line = toks[t].line;
    auto close_group = [&]() {
      if (in_group && group_has_work)
        for (const std::string& l : group) handled->insert(l);
      group.clear();
      group_has_work = false;
      in_group = false;
    };
    while (k < toks.size() && depth > 0) {
      const Token& tok = toks[k];
      if (tok.text == "{") ++depth;
      if (tok.text == "}") --depth;
      if (depth == 0) break;
      if (depth == 1 && tok.text == "case") {
        // New group starts only if the previous group already did work;
        // consecutive case labels fall through into one group.
        if (group_has_work) close_group();
        in_group = true;
        // Label is the identifier before ':' (possibly qualified).
        std::size_t l = k + 1;
        std::string last_ident;
        while (l < toks.size() && toks[l].text != ":") {
          if (toks[l].kind == TokKind::Identifier) last_ident = toks[l].text;
          ++l;
        }
        if (enumerators.count(last_ident) != 0) {
          labels.insert(last_ident);
          group.push_back(last_ident);
        }
        k = l + 1;
        continue;
      }
      if (depth == 1 && tok.text == "default" && k + 1 < toks.size() &&
          toks[k + 1].text == ":") {
        close_group();
        default_line = tok.line;
        ++k;
        continue;
      }
      if (in_group && tok.text != ";" && tok.text != "break" &&
          tok.text != "{" && tok.text != "}") {
        group_has_work = true;
      }
      ++k;
    }
    close_group();

    if (labels.empty()) continue;  // not a MsgType switch

    if (default_line != 0) {
      out->push_back({f.rel_path, default_line, "msgtype-switch",
                      "defaulted switch over MsgType silently swallows "
                      "unhandled message types; enumerate every MsgType "
                      "(ignored ones explicitly) or waive with a reason"});
    } else {
      std::vector<std::string> missing;
      for (const std::string& e : enumerators)
        if (labels.count(e) == 0) missing.push_back(e);
      if (!missing.empty()) {
        std::string list;
        for (std::size_t m = 0; m < missing.size() && m < 6; ++m)
          list += (m != 0 ? ", " : "") + missing[m];
        if (missing.size() > 6) list += ", ...";
        out->push_back({f.rel_path, switch_line, "msgtype-switch",
                        "non-exhaustive switch over MsgType (missing " +
                            std::to_string(missing.size()) + ": " + list +
                            ")"});
      }
    }
  }
}

// --------------------------------------------------------------- linter --

class Linter {
 public:
  Linter(std::string root, int jobs)
      : root_(std::move(root)), jobs_(jobs) {}

  bool load();
  void run();
  void list_codecs() const;

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  const std::vector<SourceFile>& files() const { return files_; }

 private:
  void rule_msgtype_coverage();
  void rule_metrics_registry();
  void apply_waivers();

  std::string root_;
  int jobs_ = 1;
  std::vector<SourceFile> files_;
  std::vector<std::string> doc_texts_;  // contents of docs/*.md under root
  std::string protocols_doc_;           // contents of docs/PROTOCOLS.md
  SymbolIndex index_;
  std::vector<Diagnostic> pending_;
  std::vector<Diagnostic> diagnostics_;
  std::set<std::string> msgtype_handled_;
};

bool Linter::load() {
  std::vector<std::string> paths;
  walk(root_ + "/src", &paths);
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> srcs;
  for (const std::string& path : paths)
    if (is_source_file(path)) srcs.push_back(path);

  files_.resize(srcs.size());
  std::atomic<bool> ok{true};
  parallel_for(srcs.size(), jobs_, [&](std::size_t i) {
    std::string text;
    if (!read_file(srcs[i], &text)) {
      std::fprintf(stderr, "dla_lint: cannot read %s\n", srcs[i].c_str());
      ok.store(false);
      return;
    }
    files_[i] = tokenize(srcs[i].substr(root_.size() + 1), text);
  });
  if (!ok.load()) return false;

  std::vector<std::string> docs;
  walk(root_ + "/docs", &docs);
  std::sort(docs.begin(), docs.end());
  for (const std::string& path : docs) {
    if (!has_suffix(path, ".md")) continue;
    std::string text;
    if (!read_file(path, &text)) continue;
    if (has_suffix(path, "PROTOCOLS.md")) protocols_doc_ = text;
    doc_texts_.push_back(std::move(text));
  }
  return !files_.empty();
}

void Linter::rule_msgtype_coverage() {
  for (const std::string& e : index_.msgtype_enumerators) {
    if (msgtype_handled_.count(e) != 0) continue;
    const auto& decl = index_.msgtype_decl.at(e);
    pending_.push_back(
        {decl.first, decl.second, "msgtype-coverage",
         e + " is declared but no dispatch switch or msg.type comparison "
         "handles it"});
  }
}

// metrics-registry: counter structs in audit/metrics.hpp — every field
// written somewhere in src/ and mentioned in docs/*.md.
void Linter::rule_metrics_registry() {
  const SourceFile* metrics = nullptr;
  for (const SourceFile& f : files_)
    if (has_suffix(f.rel_path, "audit/metrics.hpp")) metrics = &f;
  if (metrics == nullptr) return;

  // Collect fields of structs whose name ends in "Counters".
  struct Field {
    std::string name;
    int line;
  };
  std::vector<Field> fields;
  const std::vector<Token>& toks = metrics->tokens;
  for (std::size_t t = 0; t + 2 < toks.size(); ++t) {
    if (toks[t].text != "struct" && toks[t].text != "class") continue;
    const std::string& name = toks[t + 1].text;
    if (!has_suffix(name, "Counters")) continue;
    std::size_t b = t + 2;
    while (b < toks.size() && toks[b].text != "{" && toks[b].text != ";") ++b;
    if (b >= toks.size() || toks[b].text != "{") continue;
    int depth = 1;
    for (std::size_t j = b + 1; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}") --depth;
      if (depth != 1) continue;
      // A field declaration looks like `<type tokens> name = 0;` or
      // `<type tokens> name;` — detect identifier followed by '=' or ';'
      // whose previous token is part of a type (identifier or '>').
      if (toks[j].kind == TokKind::Identifier && j + 1 < toks.size() &&
          (toks[j + 1].text == "=" || toks[j + 1].text == ";") &&
          j > b + 1 &&
          (toks[j - 1].kind == TokKind::Identifier || toks[j - 1].text == ">" ||
           toks[j - 1].text == "&" || toks[j - 1].text == "*")) {
        fields.push_back({toks[j].text, toks[j].line});
      }
    }
  }

  for (const Field& field : fields) {
    bool written = false;
    for (const SourceFile& f : files_) {
      if (&f == metrics) continue;
      const std::vector<Token>& ft = f.tokens;
      for (std::size_t t = 0; t < ft.size() && !written; ++t) {
        if (ft[t].kind != TokKind::Identifier || ft[t].text != field.name)
          continue;
        if (t + 1 < ft.size()) {
          const std::string& nx = ft[t + 1].text;
          if (nx == "=" || nx == "+=" || nx == "-=" || nx == "++" ||
              nx == "--")
            written = true;
        }
        if (t > 0 && (ft[t - 1].text == "++" || ft[t - 1].text == "--"))
          written = true;
        // Pre-increment through a member access: `++ctr.field`.
        if (t >= 3 && (ft[t - 1].text == "." || ft[t - 1].text == "->") &&
            (ft[t - 3].text == "++" || ft[t - 3].text == "--"))
          written = true;
      }
      if (written) break;
    }
    if (!written) {
      pending_.push_back({metrics->rel_path, field.line, "metrics-registry",
                          "counter '" + field.name +
                              "' is declared but never written anywhere "
                              "under src/"});
    }
    bool documented = false;
    for (const std::string& doc : doc_texts_)
      if (doc.find(field.name) != std::string::npos) documented = true;
    if (!documented) {
      pending_.push_back({metrics->rel_path, field.line, "metrics-registry",
                          "counter '" + field.name +
                              "' is not documented in any docs/*.md (see the "
                              "metrics registry in docs/STATIC_ANALYSIS.md)"});
    }
  }
}

void Linter::apply_waivers() {
  // Waiver bookkeeping first: unknown rules / missing reasons are violations
  // and such waivers never suppress.
  for (SourceFile& f : files_) {
    for (Waiver& w : f.waivers) {
      if (known_rules().count(w.rule) == 0) {
        diagnostics_.push_back(
            Diagnostic{f.rel_path, w.line, "bad-waiver",
                       "DLA-LINT-ALLOW names unknown rule '" + w.rule + "'"});
        w.used = true;  // don't also report as unused
      } else if (!w.has_reason) {
        diagnostics_.push_back(Diagnostic{
            f.rel_path, w.line, "bad-waiver",
            "DLA-LINT-ALLOW(" + w.rule +
                ") is missing a reason: write DLA-LINT-ALLOW(" + w.rule +
                "): <why this is safe>"});
        w.used = true;
      }
    }
  }

  for (const Diagnostic& d : pending_) {
    bool suppressed = false;
    for (SourceFile& f : files_) {
      if (f.rel_path != d.file) continue;
      for (Waiver& w : f.waivers) {
        if (w.rule == d.rule && w.has_reason &&
            known_rules().count(w.rule) != 0 &&
            (w.line == d.line || w.line + 1 == d.line)) {
          w.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) diagnostics_.push_back(d);
  }

  for (const SourceFile& f : files_) {
    for (const Waiver& w : f.waivers) {
      if (!w.used) {
        diagnostics_.push_back(Diagnostic{
            f.rel_path, w.line, "unused-waiver",
            "DLA-LINT-ALLOW(" + w.rule +
                ") suppresses nothing on this or the next line; remove it"});
      }
    }
  }
  std::sort(diagnostics_.begin(), diagnostics_.end());
}

void Linter::run() {
  // Pass 1: the whole-program symbol index (MsgType enum, codec defs with
  // op sequences, include graph). Cheap relative to tokenization; serial.
  index_.file_info.resize(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i)
    index_file(files_[i], i, &index_);

  // Pass 2: per-file rules in parallel, each into its own buffer; merged in
  // file order so output stays deterministic regardless of --jobs.
  struct FileResult {
    Report pending;
    std::set<std::string> handled;
  };
  std::vector<FileResult> results(files_.size());
  parallel_for(files_.size(), jobs_, [&](std::size_t i) {
    const SourceFile& f = files_[i];
    FileResult& r = results[i];
    rule_banned_tokens(f, &r.pending);
    rule_plaintext_egress(f, &r.pending);
    rule_msgtype_switches(f, index_.msgtype_enumerators, &r.pending,
                          &r.handled);
    rule_expect_end(f, &r.pending);
    rule_include_layering(f, index_.file_info[i], &r.pending);
  });
  for (FileResult& r : results) {
    pending_.insert(pending_.end(), r.pending.begin(), r.pending.end());
    msgtype_handled_.insert(r.handled.begin(), r.handled.end());
  }

  // Whole-program rules over the index.
  rule_msgtype_coverage();
  rule_metrics_registry();
  rule_codec_symmetry(index_, files_, protocols_doc_, &pending_);
  apply_waivers();
}

void Linter::list_codecs() const {
  struct Group {
    std::vector<const CodecDef*> encodes;
    std::vector<const CodecDef*> decodes;
  };
  std::map<std::pair<std::string, bool>, Group> groups;
  for (const CodecDef& def : index_.codecs) {
    Group& g = groups[{def.owner, def.is_helper}];
    (def.is_encode ? g.encodes : g.decodes).push_back(&def);
  }
  auto join = [](const std::vector<std::string>& ops) {
    std::string s;
    for (std::size_t i = 0; i < ops.size(); ++i)
      s += (i ? "," : "") + ops[i];
    return s;
  };
  for (const auto& entry : groups) {
    const Group& g = entry.second;
    const char* kind = entry.first.second ? "helper-pair" : "pair";
    if (!g.encodes.empty() && !g.decodes.empty()) {
      const CodecDef* e = g.encodes.front();
      const CodecDef* d = g.decodes.front();
      std::printf("%s %s encode=%s:%d decode=%s:%d ops=[%s]\n", kind,
                  entry.first.first.c_str(), e->file.c_str(), e->line,
                  d->file.c_str(), d->line, join(e->ops).c_str());
    } else {
      const CodecDef* only =
          g.encodes.empty() ? g.decodes.front() : g.encodes.front();
      std::printf("unpaired %s %s %s=%s:%d ops=[%s]\n", kind,
                  entry.first.first.c_str(),
                  only->is_encode ? "encode" : "decode", only->file.c_str(),
                  only->line, join(only->ops).c_str());
    }
  }
}

// ------------------------------------------------------------ self test --

int run_self_test(const Linter& linter) {
  std::multiset<std::pair<std::string, std::pair<int, std::string>>> expected;
  for (const SourceFile& f : linter.files())
    for (const auto& [line, rule] : f.expects)
      expected.insert({f.rel_path, {line, rule}});

  std::multiset<std::pair<std::string, std::pair<int, std::string>>> actual;
  for (const Diagnostic& d : linter.diagnostics())
    actual.insert({d.file, {d.line, d.rule}});

  int failures = 0;
  for (const auto& e : expected) {
    if (actual.count(e) < expected.count(e)) {
      std::printf("SELF-TEST MISS: expected %s at %s:%d was not reported\n",
                  e.second.second.c_str(), e.first.c_str(), e.second.first);
      ++failures;
    }
  }
  for (const auto& a : actual) {
    if (expected.count(a) < actual.count(a)) {
      std::printf("SELF-TEST EXTRA: unexpected %s at %s:%d\n",
                  a.second.second.c_str(), a.first.c_str(), a.second.first);
      ++failures;
    }
  }
  if (expected.empty()) {
    std::printf("SELF-TEST: fixture tree carries no EXPECT annotations\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("self-test OK: %zu expected diagnostics all detected, "
                "no extras, waivers honored\n",
                expected.size());
    return 0;
  }
  std::printf("self-test FAILED: %d mismatches\n", failures);
  return 1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: dla_lint --root <repo-root> [--self-test] [--jobs N]\n"
      "                [--sarif out.json] [--budget-ms N] [--list-codecs]\n"
      "  Scans <root>/src/**.{h,hpp,cc,cpp} (+ <root>/docs/*.md for the\n"
      "  metrics registry and protocol tables) with a two-pass whole-program\n"
      "  analysis. --jobs 0 = one thread per core. --sarif writes SARIF\n"
      "  2.1.0. --budget-ms fails the run if the scan exceeds the budget.\n"
      "  --list-codecs prints every discovered encode/decode pair.\n"
      "  Exit 0 = clean, 1 = violations/over-budget, 2 = usage/io.\n");
}

}  // namespace
}  // namespace dla_lint

int main(int argc, char** argv) {
  using namespace dla_lint;
  std::string root;
  std::string sarif_path;
  bool self_test = false;
  bool list_codecs = false;
  int jobs = 0;
  long budget_ms = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      budget_ms = std::atol(argv[++i]);
    } else if (arg == "--list-codecs") {
      list_codecs = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }
  if (root.empty()) {
    usage();
    return 2;
  }
  while (root.size() > 1 && root.back() == '/') root.pop_back();
  if (jobs <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw > 32 ? 32 : hw);
  }

  const auto t0 = std::chrono::steady_clock::now();
  Linter linter(root, jobs);
  if (!linter.load()) {
    std::fprintf(stderr, "dla_lint: no sources found under %s/src\n",
                 root.c_str());
    return 2;
  }
  linter.run();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (!sarif_path.empty()) {
    char resolved[PATH_MAX];
    std::string abs_root =
        realpath(root.c_str(), resolved) != nullptr ? resolved : root;
    if (!write_sarif(sarif_path, abs_root, linter.diagnostics())) {
      std::fprintf(stderr, "dla_lint: cannot write SARIF to %s\n",
                   sarif_path.c_str());
      return 2;
    }
  }

  if (list_codecs) {
    linter.list_codecs();
    return 0;
  }
  if (self_test) return run_self_test(linter);

  for (const Diagnostic& d : linter.diagnostics()) {
    std::printf("%s:%d: error: [%s] %s\n", d.file.c_str(), d.line,
                d.rule.c_str(), d.message.c_str());
  }
  int exit_code = 0;
  if (linter.diagnostics().empty()) {
    std::printf("dla_lint: clean (%zu files, %.1f ms, jobs=%d)\n",
                linter.files().size(), elapsed_ms, jobs);
  } else {
    std::printf("dla_lint: %zu violation(s)\n", linter.diagnostics().size());
    exit_code = 1;
  }
  if (budget_ms > 0 && elapsed_ms > static_cast<double>(budget_ms)) {
    std::printf("dla_lint: BUDGET EXCEEDED: %.1f ms > %ld ms (--budget-ms)\n",
                elapsed_ms, budget_ms);
    exit_code = exit_code == 0 ? 1 : exit_code;
  }
  return exit_code;
}
