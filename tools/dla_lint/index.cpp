// dla_lint pass 1: the whole-program symbol index.
//
// Built once over every tokenized file, then shared (read-only) by all
// rules: the MsgType enum with declaration sites, the tokenized #include
// graph with layer attribution, and — for codec-symmetry — every
// encode/decode codec definition with the ordered sequence of wire
// primitives its body performs.

#include "lint.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>

namespace dla_lint {

// -------------------------------------------------------------- fs walk --

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void walk(const std::string& dir, std::vector<std::string>* out) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    std::string path = dir + "/" + name;
    struct stat st{};
    if (stat(path.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      walk(path, out);
    } else if (S_ISREG(st.st_mode)) {
      out->push_back(path);
    }
  }
  closedir(d);
}

bool has_suffix(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool has_prefix(const std::string& s, const std::string& pre) {
  return s.compare(0, pre.size(), pre) == 0;
}

bool is_source_file(const std::string& path) {
  return has_suffix(path, ".cpp") || has_suffix(path, ".hpp") ||
         has_suffix(path, ".cc") || has_suffix(path, ".h");
}

// --------------------------------------------------------- MsgType enum --

namespace {

void collect_msgtype_enum(const SourceFile& f, SymbolIndex* out) {
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t t = 0; t + 1 < toks.size(); ++t) {
    if (toks[t].text != "enum") continue;
    std::size_t name_at = t + 1;
    if (name_at < toks.size() &&
        (toks[name_at].text == "class" || toks[name_at].text == "struct"))
      ++name_at;
    if (name_at >= toks.size() || toks[name_at].text != "MsgType") continue;
    // Skip an optional ": underlying_type" to the opening brace.
    std::size_t b = name_at + 1;
    while (b < toks.size() && toks[b].text != "{" && toks[b].text != ";") ++b;
    if (b >= toks.size() || toks[b].text != "{") continue;
    int depth = 1;
    bool expect_name = true;
    for (std::size_t j = b + 1; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}") {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (toks[j].text == ",") {
        expect_name = true;
        continue;
      }
      if (expect_name && toks[j].kind == TokKind::Identifier) {
        out->msgtype_enumerators.insert(toks[j].text);
        out->msgtype_decl.emplace(toks[j].text,
                                  std::make_pair(f.rel_path, toks[j].line));
        expect_name = false;
      }
    }
  }
}

// ------------------------------------------------------ codec extraction --

const std::set<std::string>& primitive_ops() {
  static const std::set<std::string> ops = {
      "u8",  "u32", "u64",     "i64", "f64",
      "str", "blob", "boolean", "big", "vec"};
  return ops;
}

// Finds the token index of the matching close for the open bracket at
// `open` (which must be "(" or "{").
std::size_t matching_close(const std::vector<Token>& toks, std::size_t open) {
  const std::string& open_text = toks[open].text;
  const std::string close_text = open_text == "(" ? ")" : "}";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == open_text) ++depth;
    if (toks[i].text == close_text) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

// Does the parameter list [open+1, close) mention the given type name?
bool params_mention(const std::vector<Token>& toks, std::size_t open,
                    std::size_t close, const char* type_name) {
  for (std::size_t i = open + 1; i < close && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::Identifier && toks[i].text == type_name)
      return true;
  }
  return false;
}

// Extracts the ordered wire-primitive sequence from a codec body
// [body_open, body_close]. Every `x.<prim>(` / `x-><prim>(` call (including
// `x.vec<...>(`) emits its primitive; `x.encode(` and `T::decode(` emit
// "nested"; calls to free helper pairs `encode_<s>(` / `decode_<s>(` emit
// "call:<s>". Conditionals and loops are linearized in token order, so a
// symmetric `if`/`switch` shape compares equal and an asymmetric one fails.
std::vector<std::string> extract_ops(const std::vector<Token>& toks,
                                     std::size_t body_open,
                                     std::size_t body_close) {
  std::vector<std::string> ops;
  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier) continue;
    const bool member_call =
        i > body_open + 1 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const std::string* next = i + 1 < body_close ? &toks[i + 1].text : nullptr;
    if (member_call && primitive_ops().count(tok.text) != 0 && next != nullptr &&
        (*next == "(" || *next == "<")) {
      ops.push_back(tok.text);
      continue;
    }
    if (member_call && tok.text == "encode" && next != nullptr &&
        *next == "(") {
      ops.push_back("nested");
      continue;
    }
    // Type::decode(reader) / Type::encode(writer) — a nested struct codec.
    if (next != nullptr && *next == "::" && i + 2 < body_close &&
        (toks[i + 2].text == "decode" || toks[i + 2].text == "encode") &&
        i + 3 < body_close && toks[i + 3].text == "(") {
      ops.push_back("nested");
      continue;
    }
    if (!member_call && next != nullptr && *next == "(" &&
        (has_prefix(tok.text, "encode_") || has_prefix(tok.text, "decode_"))) {
      ops.push_back("call:" + tok.text.substr(7));
      continue;
    }
  }
  return ops;
}

void note_codec(const SourceFile& f, const std::vector<Token>& toks,
                std::size_t name_at, const std::string& owner, bool is_helper,
                bool is_encode, std::vector<CodecDef>* out) {
  // name_at points at "encode"/"decode"/"encode_x"/"decode_x"; the next
  // token is "(". Qualify as a *definition* only if the parameter list
  // mentions Writer (encode) / Reader (decode) and a body follows.
  std::size_t open = name_at + 1;
  std::size_t close = matching_close(toks, open);
  if (close >= toks.size()) return;
  if (!params_mention(toks, open, close, is_encode ? "Writer" : "Reader"))
    return;
  std::size_t after = close + 1;
  while (after < toks.size() &&
         (toks[after].text == "const" || toks[after].text == "noexcept"))
    ++after;
  if (after >= toks.size() || toks[after].text != "{") return;
  std::size_t body_close = matching_close(toks, after);
  if (body_close >= toks.size()) return;

  CodecDef def;
  def.owner = owner;
  def.is_helper = is_helper;
  def.is_encode = is_encode;
  def.file = f.rel_path;
  def.line = toks[name_at].line;
  def.ops = extract_ops(toks, after, body_close);
  out->push_back(std::move(def));
}

}  // namespace

void extract_codecs(const SourceFile& f, std::vector<CodecDef>* out) {
  const std::vector<Token>& toks = f.tokens;
  // Struct-context stack for inline member definitions: (name, brace depth
  // of the struct body).
  std::vector<std::pair<std::string, int>> struct_stack;
  int depth = 0;
  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Token& tok = toks[t];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      while (!struct_stack.empty() && struct_stack.back().second > depth)
        struct_stack.pop_back();
      continue;
    }
    if (tok.kind != TokKind::Identifier) continue;
    if ((tok.text == "struct" || tok.text == "class") &&
        (t == 0 || toks[t - 1].text != "enum")) {
      // struct NAME ... { — find the body brace (stop on ';' = fwd decl).
      if (t + 1 < toks.size() && toks[t + 1].kind == TokKind::Identifier) {
        std::string name = toks[t + 1].text;
        std::size_t b = t + 2;
        int guard = 0;
        while (b < toks.size() && toks[b].text != "{" && toks[b].text != ";" &&
               guard < 16) {
          ++b;
          ++guard;
        }
        if (b < toks.size() && toks[b].text == "{")
          struct_stack.emplace_back(std::move(name), depth + 1);
      }
      continue;
    }
    const bool paren_next = t + 1 < toks.size() && toks[t + 1].text == "(";
    if (!paren_next) continue;
    const bool is_encode_name = tok.text == "encode";
    const bool is_decode_name = tok.text == "decode";
    if (is_encode_name || is_decode_name) {
      // Member-call sites (x.encode(w)) are ops, not definitions.
      if (t > 0 && (toks[t - 1].text == "." || toks[t - 1].text == "->"))
        continue;
      std::string owner;
      if (t >= 2 && toks[t - 1].text == "::" &&
          toks[t - 2].kind == TokKind::Identifier) {
        owner = toks[t - 2].text;  // out-of-line T::encode / T::decode
      } else if (!struct_stack.empty()) {
        owner = struct_stack.back().first;  // inline member
      }
      if (!owner.empty())
        note_codec(f, toks, t, owner, /*is_helper=*/false, is_encode_name,
                   out);
      continue;
    }
    // Free helper pairs encode_<suffix> / decode_<suffix>.
    if (has_prefix(tok.text, "encode_") || has_prefix(tok.text, "decode_")) {
      if (t > 0 && (toks[t - 1].text == "." || toks[t - 1].text == "->" ||
                    toks[t - 1].text == "::"))
        continue;
      note_codec(f, toks, t, tok.text.substr(7), /*is_helper=*/true,
                 has_prefix(tok.text, "encode_"), out);
    }
  }
}

void index_file(const SourceFile& f, std::size_t file_slot, SymbolIndex* out) {
  collect_msgtype_enum(f, out);
  extract_codecs(f, &out->codecs);

  FileIndex& info = out->file_info[file_slot];
  static const char* layers[] = {"audit", "bignum", "crypto", "logm", "net"};
  for (const char* layer : layers) {
    if (has_prefix(f.rel_path, std::string("src/") + layer + "/")) {
      info.layer = layer;
      break;
    }
  }
  for (const Token& tok : f.tokens) {
    if (tok.kind != TokKind::Include) continue;
    info.includes.push_back({tok.text, tok.line});
  }
}

}  // namespace dla_lint
