// Shared types for dla_lint — the two-pass, whole-program analyzer.
//
// Pass 1 (index): every file under <root>/src is tokenized (in parallel,
// --jobs N) and a cross-file SymbolIndex is built: the MsgType enum, every
// encode/decode codec definition with its extracted primitive-op sequence,
// and the tokenized #include graph. Pass 2 (rules): per-file rules run in
// parallel over the token streams; whole-program rules (codec-symmetry,
// msgtype-coverage, metrics-registry, include-layering verdicts) consume
// the index. See docs/STATIC_ANALYSIS.md.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dla_lint {

// ----------------------------------------------------------- diagnostics --

struct Diagnostic {
  std::string file;  // root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& rhs) const {
    if (file != rhs.file) return file < rhs.file;
    if (line != rhs.line) return line < rhs.line;
    if (rule != rhs.rule) return rule < rhs.rule;
    return message < rhs.message;
  }
};

const std::set<std::string>& known_rules();

// ------------------------------------------------------------- tokenizer --

// Include is distinct from String so that rules over #include paths
// (include-layering, the montgomery header ban) can never be spoofed by a
// string literal that happens to contain a header-shaped path.
enum class TokKind { Identifier, Number, String, Include, Punct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Waiver {
  int line = 0;
  std::string rule;
  bool has_reason = false;
  bool used = false;
};

struct SourceFile {
  std::string rel_path;  // relative to root
  std::vector<Token> tokens;
  std::vector<Waiver> waivers;
  // line -> rules expected by the self-test fixture annotations.
  std::multimap<int, std::string> expects;
};

SourceFile tokenize(const std::string& rel_path, const std::string& src);

// ------------------------------------------------------------- utilities --

bool has_suffix(const std::string& s, const std::string& suf);
bool has_prefix(const std::string& s, const std::string& pre);
bool read_file(const std::string& path, std::string* out);
void walk(const std::string& dir, std::vector<std::string>* out);
bool is_source_file(const std::string& path);

// ----------------------------------------------------------- symbol index --

// One encode() or decode() definition found anywhere under src/, with the
// ordered sequence of wire primitives its body performs. Ops are the Writer/
// Reader primitive names (u8, u32, u64, i64, f64, boolean, str, blob, big,
// vec), "nested" for a nested struct codec call, or "call:<suffix>" for a
// shared helper pair (encode_<suffix>/decode_<suffix>).
struct CodecDef {
  std::string owner;   // struct name, or helper suffix for free helpers
  bool is_helper = false;
  bool is_encode = false;
  std::string file;    // rel path of the definition
  int line = 0;        // line of the definition
  std::vector<std::string> ops;
};

struct IncludeEdge {
  std::string path;  // include path as written ("audit/wire.hpp")
  int line = 0;
};

struct FileIndex {
  // layer name ("audit", "net", ...) if the file lives in src/<layer>/.
  std::string layer;
  std::vector<IncludeEdge> includes;
};

struct SymbolIndex {
  std::set<std::string> msgtype_enumerators;
  // enumerator -> (file, line) of its declaration.
  std::map<std::string, std::pair<std::string, int>> msgtype_decl;
  std::vector<CodecDef> codecs;
  // rel_path -> per-file include/layer info, in file order.
  std::vector<FileIndex> file_info;  // parallel to the files vector
};

// Pass-1 index construction (index.cpp).
void index_file(const SourceFile& f, std::size_t file_slot, SymbolIndex* out);
void extract_codecs(const SourceFile& f, std::vector<CodecDef>* out);

// --------------------------------------------------- conformance rules --

using Report = std::vector<Diagnostic>;

// codec-symmetry: pairs up encode/decode definitions from the index and
// fails on any field-order, width, or count mismatch; also requires every
// paired payload struct and every MsgType enumerator to be documented in
// docs/PROTOCOLS.md.
void rule_codec_symmetry(const SymbolIndex& index,
                         const std::vector<SourceFile>& files,
                         const std::string& protocols_doc, Report* out);

// expect-end: every net::Reader declared in protocol/storage code must be
// exactly drained (reader.expect_end()) before its block ends.
void rule_expect_end(const SourceFile& f, Report* out);

// include-layering: the explicit dependency DAG over src/{bignum, crypto,
// logm, net, audit}, checked per tokenized #include edge.
void rule_include_layering(const SourceFile& f, const FileIndex& info,
                           Report* out);

// ------------------------------------------------------------------ sarif --

// Writes the diagnostics as SARIF 2.1.0 (code-scanning consumable).
bool write_sarif(const std::string& path, const std::string& root,
                 const std::vector<Diagnostic>& diagnostics);

}  // namespace dla_lint
