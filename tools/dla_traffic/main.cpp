// dla_traffic: regression-gated scenario matrix over audit::TrafficHarness.
//
// Runs every scenario as a fault-free / seeded-chaos pair on one or both
// transport backends, asserts the per-run invariants (I1-I5), the Eq. 10-13
// confidentiality metrics and the pair agreement, gates fault-free latency
// and confidentiality against bench/traffic_baseline.txt, and writes
// BENCH_traffic.json. A fault-injection canary (debug_rewind_glsn mid-run)
// must be *caught* by the harness or the driver fails — proving the checks
// have teeth. See docs/TRAFFIC.md.
//
// Usage:
//   dla_traffic [--smoke] [--json=PATH] [--baseline=PATH]
//               [--write-baseline] [--transport=sim,tcp] [--scenario=NAME]
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "audit/traffic_harness.hpp"
#include "workload_gen.hpp"

namespace {

using dla::audit::AggOp;
using dla::audit::ArrivalProcess;
using dla::audit::Cluster;
using dla::audit::OpClass;
using dla::audit::PairReport;
using dla::audit::RunOptions;
using dla::audit::RunResult;
using dla::audit::ScenarioSpec;

// ------------------------------------------------------ scenario matrix --
// Benign chaos tier: duplication, jitter and reordering but no loss — every
// op must still complete and the pair must agree on every certified result.
dla::net::ChaosConfig benign_chaos() {
  dla::net::ChaosConfig c;
  c.dup_prob = 0.05;
  c.jitter_prob = 0.3;
  c.jitter_max = 40;
  c.reorder_prob = 0.2;
  return c;
}

// Root directory for durable-storage scenarios; one tree per driver process,
// removed on exit. run_scenario wipes the per-leg subdir itself.
const std::string& storage_root() {
  static const std::string root =
      (std::filesystem::temp_directory_path() /
       ("dla_traffic_storage_" + std::to_string(::getpid())))
          .string();
  return root;
}

std::vector<ScenarioSpec> scenario_matrix(bool smoke) {
  std::vector<ScenarioSpec> out;
  const std::vector<std::string>& criteria = dla::testkit::cluster_criteria();
  const std::vector<dla::audit::AggregateSpec> aggregates = {
      {"protocl = 'TCP'", AggOp::Count, ""},
      {"id = 'U1'", AggOp::Sum, "C1"},
      {"C2 > 500.0", AggOp::Avg, "C2"},
  };

  if (smoke) {
    ScenarioSpec s;
    s.name = "steady_smoke";
    s.seed = 11;
    s.preload_records = 10;
    s.ops = 30;
    s.mean_gap_us = 6000;
    s.mix = {3, 2, 1, 0.5, 0.25};
    s.criteria = criteria;
    s.aggregates = aggregates;
    s.chaos = benign_chaos();
    out.push_back(std::move(s));
    return out;
  }

  {  // balanced mix, uniform arrivals: the workhorse regression scenario
    ScenarioSpec s;
    s.name = "steady_mixed";
    s.seed = 101;
    s.preload_records = 24;
    s.ops = 140;
    s.mean_gap_us = 4000;
    s.mix = {4, 3, 1, 1, 0.5};
    s.criteria = criteria;
    s.aggregates = aggregates;
    s.chaos = benign_chaos();
    out.push_back(std::move(s));
  }
  {  // Poisson batches against a bandwidth-capped link: bursts must queue,
     // and the open-loop latency must include that queueing delay
    ScenarioSpec s;
    s.name = "bursty_poisson";
    s.seed = 202;
    s.preload_records = 16;
    s.ops = 120;
    s.arrivals = ArrivalProcess::PoissonBatch;
    s.mean_gap_us = 3000;
    s.batch_max = 8;
    s.link_bytes_per_us = 4.0;
    s.mix = {3, 2, 1, 0, 0};
    s.criteria = criteria;
    s.aggregates = aggregates;
    s.chaos = benign_chaos();
    out.push_back(std::move(s));
  }
  {  // millions of Zipf-skewed identities + ticket churn, on/off bursts
    ScenarioSpec s;
    s.name = "identity_churn";
    s.seed = 303;
    s.preload_records = 12;
    s.ops = 150;
    s.arrivals = ArrivalProcess::OnOff;
    s.mean_gap_us = 2500;
    s.on_window_us = 30000;
    s.off_window_us = 50000;
    s.identities = 2'000'000;
    s.zipf_s = 1.1;
    s.reissue_every = 10;  // implies mix.del == 0 (see generate_ops)
    s.mix = {5, 3, 1, 0, 0.5};
    s.criteria = criteria;
    s.aggregates = aggregates;
    s.chaos = benign_chaos();
    out.push_back(std::move(s));
  }
  {  // lossy tier: real drops, crash/recover outages and one partition;
     // completion may dip but no completed result may be wrong
    ScenarioSpec s;
    s.name = "lossy_readmostly";
    s.seed = 404;
    s.preload_records = 20;
    s.ops = 120;
    s.mean_gap_us = 4000;
    s.mix = {2, 5, 1, 0.5, 0};
    s.criteria = criteria;
    s.aggregates = aggregates;
    s.chaos = benign_chaos();
    s.chaos.drop_prob = 0.04;
    s.chaos_outages = 2;
    s.chaos_partitions = 1;
    s.chaos_horizon_us = 400'000;
    s.chaos_window_us = 25'000;
    s.lossy = true;
    out.push_back(std::move(s));
  }
  {  // durable storage churn: every node on the mmap'd segment engine with
     // a tiny memtable, write/delete-heavy — seals and tiered compactions
     // fire mid-traffic while queries and integrity audits race them
    ScenarioSpec s;
    s.name = "durable_churn";
    s.seed = 606;
    s.preload_records = 24;
    s.ops = 140;
    s.mean_gap_us = 4000;
    s.mix = {5, 2, 0.5, 2, 0.5};
    s.criteria = criteria;
    s.aggregates = aggregates;
    s.chaos = benign_chaos();
    s.storage_dir = storage_root();
    s.storage_memtable_max = 16;
    s.storage_compaction_fanout = 2;
    out.push_back(std::move(s));
  }
  return out;
}

ScenarioSpec rewind_canary() {
  ScenarioSpec s;
  s.name = "rewind_canary";
  s.seed = 515;
  s.preload_records = 8;
  s.ops = 40;
  s.mean_gap_us = 5000;
  s.mix = {5, 2, 0, 0, 0};
  s.criteria = dla::testkit::cluster_criteria();
  s.inject_rewind = true;
  return s;
}

// ----------------------------------------------------------------- JSON --
std::string esc(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  return out;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void emit_run(std::ostream& os, const RunResult& r) {
  os << "    {\"scenario\": \"" << esc(r.scenario) << "\", \"transport\": \""
     << r.transport << "\", \"chaos\": " << (r.chaos ? "true" : "false")
     << ", \"chaos_seed\": " << r.chaos_seed
     << ", \"duration_us\": " << r.duration_us
     << ", \"completed_ops\": " << r.completed_ops
     << ", \"failed_ops\": " << r.failed_ops
     << ", \"skipped_ops\": " << r.skipped_ops
     << ", \"completion_rate\": " << fmt(r.completion_rate) << ",\n";
  os << "     \"latency_us\": {";
  bool first = true;
  for (const auto& [cls, st] : r.latency) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << dla::audit::to_string(cls) << "\": {\"count\": " << st.count
       << ", \"p50\": " << st.p50 << ", \"p95\": " << st.p95
       << ", \"p99\": " << st.p99 << ", \"p999\": " << st.p999
       << ", \"max\": " << st.max << "}";
  }
  os << "},\n";
  os << "     \"invariants_ok\": " << (r.invariants.ok() ? "true" : "false")
     << ", \"violations\": [";
  for (std::size_t i = 0; i < r.invariants.violations.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << esc(r.invariants.violations[i]) << "\"";
  }
  os << "],\n";
  os << "     \"c_store\": " << fmt(r.c_store)
     << ", \"c_auditing\": " << fmt(r.c_auditing)
     << ", \"c_dla\": " << fmt(r.c_dla) << ",\n";
  os << "     \"cache\": {\"hits\": " << r.cache.cache_hits
     << ", \"misses\": " << r.cache.cache_misses
     << ", \"invalidations\": " << r.cache.cache_invalidations << "},\n";
  os << "     \"wire_rejects\": {\"codec\": " << r.rejects.codec_rejects
     << ", \"trailing\": " << r.rejects.trailing_rejects
     << ", \"parse\": " << r.rejects.parse_rejects << "},\n";
  os << "     \"chaos_effects\": {\"dropped\": "
     << r.chaos_counters.chaos_drops
     << ", \"duplicated\": " << r.chaos_counters.duplicates_injected
     << ", \"jittered\": " << r.chaos_counters.jitter_events << "},\n";
  os << "     \"messages_sent\": " << r.messages_sent
     << ", \"bytes_sent\": " << r.bytes_sent << ",\n";
  os << "     \"messages_by_class\": {";
  first = true;
  for (const auto& [cls, n] : r.messages_by_class) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << esc(cls) << "\": " << n;
  }
  os << "}}";
}

// ------------------------------------------------------------ baselines --
// bench/traffic_baseline.txt: `<scenario>/<transport> <metric> <value>`
// per fault-free run; regenerate with --write-baseline after intentional
// performance or protocol changes.
using Baseline = std::map<std::string, double>;

Baseline load_baseline(const std::string& path, bool& found) {
  Baseline out;
  std::ifstream in(path);
  found = in.good();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string scope, metric;
    double value = 0.0;
    if (fields >> scope >> metric >> value) out[scope + " " + metric] = value;
  }
  return out;
}

std::map<std::string, double> baseline_metrics(const RunResult& r) {
  std::map<std::string, double> m;
  for (const auto& [cls, st] : r.latency) {
    if (st.count == 0) continue;
    m[std::string(dla::audit::to_string(cls)) + "_p50"] =
        static_cast<double>(st.p50);
    m[std::string(dla::audit::to_string(cls)) + "_p95"] =
        static_cast<double>(st.p95);
    m[std::string(dla::audit::to_string(cls)) + "_p99"] =
        static_cast<double>(st.p99);
  }
  m["c_store"] = r.c_store;
  m["c_auditing"] = r.c_auditing;
  m["c_dla"] = r.c_dla;
  return m;
}

bool is_confidentiality(const std::string& metric) {
  return metric.rfind("c_", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, write_baseline = false;
  std::string json_path, baseline_path, only_scenario;
  std::string transports = "sim,tcp";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto val = [&arg](const char* flag) -> std::string {
      return arg.substr(std::string(flag).size());
    };
    if (arg == "--smoke") smoke = true;
    else if (arg == "--write-baseline") write_baseline = true;
    else if (arg.rfind("--json=", 0) == 0) json_path = val("--json=");
    else if (arg.rfind("--baseline=", 0) == 0) baseline_path = val("--baseline=");
    else if (arg.rfind("--transport=", 0) == 0) transports = val("--transport=");
    else if (arg.rfind("--scenario=", 0) == 0) only_scenario = val("--scenario=");
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (json_path.empty()) {
    json_path = smoke ? "BENCH_traffic_smoke.json" : "BENCH_traffic.json";
  }

  // Which backends to sweep. --smoke rides whatever DLA_TRANSPORT the test
  // run exported (so `DLA_TRANSPORT=tcp ctest -L tier1` re-runs the smoke
  // scenario over the real byte path); the full matrix pins the variable
  // per leg so it covers both backends in one invocation.
  std::vector<std::string> backends;
  if (smoke) {
    const char* env = std::getenv("DLA_TRANSPORT");
    backends.push_back(env != nullptr && std::string_view(env) != "sim"
                           ? "tcp"
                           : "sim");
  } else {
    std::stringstream ss(transports);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) backends.push_back(tok);
    }
  }

  bool found_baseline = false;
  Baseline baseline;
  if (!baseline_path.empty()) {
    baseline = load_baseline(baseline_path, found_baseline);
  }

  std::vector<std::string> failures;
  std::vector<RunResult> runs;
  struct PairRow {
    std::string scenario, transport;
    PairReport report;
  };
  std::vector<PairRow> pairs;
  Baseline new_baseline;

  for (const std::string& backend : backends) {
    if (!smoke) setenv("DLA_TRANSPORT", backend.c_str(), 1);
    const Cluster::TransportKind kind = backend == "tcp"
                                            ? Cluster::TransportKind::TcpRelay
                                            : Cluster::TransportKind::Sim;
    for (ScenarioSpec spec : scenario_matrix(smoke)) {
      if (!only_scenario.empty() && spec.name != only_scenario) continue;
      std::cerr << "[traffic] " << spec.name << " on " << backend << "\n";

      RunOptions fault_free;
      fault_free.transport = kind;
      RunOptions chaotic;
      chaotic.transport = kind;
      chaotic.chaos = true;
      chaotic.chaos_seed = spec.seed * 31 + 7;

      RunResult a = dla::audit::run_scenario(spec, fault_free);
      RunResult b = dla::audit::run_scenario(spec, chaotic);
      PairReport pair = dla::audit::compare_runs(spec, a, b);

      const std::string scope = spec.name + "/" + backend;
      for (const RunResult* r : {&a, &b}) {
        if (!r->invariants.ok()) {
          failures.push_back(scope + (r->chaos ? " [chaos]" : "") +
                             " invariant violations:\n" +
                             r->invariants.summary());
        }
        if (!spec.lossy && (r->failed_ops != 0 || r->completion_rate < 1.0)) {
          failures.push_back(scope + (r->chaos ? " [chaos]" : "") + ": " +
                             std::to_string(r->failed_ops) +
                             " ops failed to complete in a non-lossy run");
        }
        if (!spec.lossy) {
          // Completed-but-refused ops (e.g. an authorization hole) must not
          // hide behind a 100% completion rate.
          std::size_t refused = 0;
          for (const auto& op : r->ops) {
            if (op.done && !op.ok && !op.skipped) ++refused;
          }
          if (refused != 0) {
            failures.push_back(scope + (r->chaos ? " [chaos]" : "") + ": " +
                               std::to_string(refused) +
                               " ops completed refused in a non-lossy run");
          }
        }
      }
      if (spec.lossy && a.completion_rate < 1.0) {
        failures.push_back(scope +
                           ": fault-free leg of a lossy pair lost ops");
      }
      if (!pair.ok()) {
        failures.push_back(scope + " pair disagreement:\n" + pair.summary());
      }

      // Regression gate over the fault-free leg. Latency budget is 1.25x
      // the checked-in value (+250us absolute floor for tiny quantities);
      // confidentiality must match to 1e-9 — the metrics are functions of
      // the spec-fixed op stream only.
      for (const auto& [metric, value] : baseline_metrics(a)) {
        new_baseline[scope + " " + metric] = value;
        if (write_baseline || !found_baseline) continue;
        auto it = baseline.find(scope + " " + metric);
        if (it == baseline.end()) {
          failures.push_back(scope + ": no baseline for " + metric +
                             " (run dla_traffic --write-baseline)");
          continue;
        }
        if (is_confidentiality(metric)) {
          if (std::abs(value - it->second) >
              1e-9 * std::max(1.0, std::abs(it->second))) {
            failures.push_back(scope + ": " + metric + " drifted from " +
                               fmt(it->second) + " to " + fmt(value));
          }
        } else if (value > it->second * 1.25 + 250.0) {
          failures.push_back(scope + ": " + metric + " regressed: " +
                             fmt(value) + "us vs baseline " +
                             fmt(it->second) + "us (budget 1.25x + 250)");
        }
      }
      if (!write_baseline && found_baseline) {
        // A vanished metric (e.g. a class stopped completing) is a
        // regression too, not a free pass.
        const auto metrics = baseline_metrics(a);
        for (const auto& [key, _] : baseline) {
          if (key.rfind(scope + " ", 0) != 0) continue;
          std::string metric = key.substr(scope.size() + 1);
          if (!metrics.contains(metric)) {
            failures.push_back(scope + ": baseline metric " + metric +
                               " no longer produced");
          }
        }
      }

      runs.push_back(std::move(a));
      runs.push_back(std::move(b));
      pairs.push_back({spec.name, backend, std::move(pair)});
    }
  }

  // Fault-injection canary (sim transport, fault-free): the harness MUST
  // report I1/I2 violations for a mid-run glsn rewind; a silent pass means
  // the invariant checks are broken.
  bool canary_caught = true;
  if (!smoke && only_scenario.empty()) {
    setenv("DLA_TRANSPORT", "sim", 1);
    ScenarioSpec canary = rewind_canary();
    std::cerr << "[traffic] " << canary.name << " on sim (must be caught)\n";
    RunResult r = dla::audit::run_scenario(canary, RunOptions{});
    canary_caught = !r.invariants.ok();
    bool names_sequencing = false;
    for (const std::string& v : r.invariants.violations) {
      if (v.find("I1") != std::string::npos ||
          v.find("I2") != std::string::npos) {
        names_sequencing = true;
      }
    }
    if (!canary_caught || !names_sequencing) {
      failures.push_back(
          "rewind canary NOT caught: debug_rewind_glsn mid-run produced no "
          "I1/I2 violation (seed " + std::to_string(canary.seed) + ")");
    } else {
      std::cerr << "[traffic] canary caught (" << r.invariants.violations.size()
                << " violations, reproduce with seed "
                << canary.seed << ")\n";
    }
    runs.push_back(std::move(r));
  }

  if (write_baseline && !baseline_path.empty()) {
    std::ofstream out(baseline_path);
    out << "# dla_traffic fault-free baselines: <scenario>/<transport> "
           "<metric> <value>\n"
        << "# Regenerate with: dla_traffic --baseline=<path> "
           "--write-baseline\n";
    for (const auto& [key, value] : new_baseline) {
      out << key << " " << fmt(value) << "\n";
    }
    std::cerr << "[traffic] wrote " << new_baseline.size()
              << " baseline entries to " << baseline_path << "\n";
  }

  std::ofstream js(json_path);
  js << "{\n  \"benchmark\": \"traffic\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    emit_run(js, runs[i]);
    js << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  js << "  ],\n  \"pairs\": [\n";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    js << "    {\"scenario\": \"" << esc(pairs[i].scenario)
       << "\", \"transport\": \"" << pairs[i].transport
       << "\", \"ok\": " << (pairs[i].report.ok() ? "true" : "false")
       << ", \"violations\": [";
    const auto& v = pairs[i].report.violations;
    for (std::size_t j = 0; j < v.size(); ++j) {
      if (j) js << ", ";
      js << "\"" << esc(v[j]) << "\"";
    }
    js << "]}" << (i + 1 < pairs.size() ? ",\n" : "\n");
  }
  js << "  ],\n  \"canary_caught\": " << (canary_caught ? "true" : "false")
     << ",\n  \"failures\": [\n";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    js << "    \"" << esc(failures[i]) << "\""
       << (i + 1 < failures.size() ? ",\n" : "\n");
  }
  js << "  ]\n}\n";
  js.close();
  std::cerr << "[traffic] wrote " << json_path << " (" << runs.size()
            << " runs, " << pairs.size() << " pairs)\n";

  std::error_code ec;
  std::filesystem::remove_all(storage_root(), ec);

  if (!failures.empty()) {
    std::cerr << "\n[traffic] FAILURES (" << failures.size() << "):\n";
    for (const std::string& f : failures) std::cerr << "  - " << f << "\n";
    return 1;
  }
  std::cerr << "[traffic] all scenarios passed\n";
  return 0;
}
